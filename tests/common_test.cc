#include <gtest/gtest.h>

#include <random>

#include "common/crc32.h"
#include "common/result.h"
#include "common/status.h"
#include "common/str_util.h"
#include "common/varint.h"

namespace xorator {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::ParseError("bad token");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kParseError);
  EXPECT_EQ(s.message(), "bad token");
  EXPECT_EQ(s.ToString(), "ParseError: bad token");
}

TEST(StatusTest, AllCodesHaveNames) {
  EXPECT_EQ(StatusCodeToString(StatusCode::kNotFound), "NotFound");
  EXPECT_EQ(StatusCodeToString(StatusCode::kIOError), "IOError");
  EXPECT_EQ(StatusCodeToString(StatusCode::kAlreadyExists), "AlreadyExists");
  EXPECT_EQ(StatusCodeToString(StatusCode::kNotImplemented),
            "NotImplemented");
  EXPECT_EQ(StatusCodeToString(StatusCode::kInternal), "Internal");
  EXPECT_EQ(StatusCodeToString(StatusCode::kInvalidArgument),
            "InvalidArgument");
  EXPECT_EQ(StatusCodeToString(StatusCode::kOutOfRange), "OutOfRange");
  EXPECT_EQ(StatusCodeToString(StatusCode::kCorruption), "Corruption");
  EXPECT_EQ(StatusCodeToString(StatusCode::kUnavailable), "Unavailable");
}

TEST(StatusTest, CorruptionAndUnavailableFactories) {
  Status c = Status::Corruption("checksum mismatch");
  EXPECT_FALSE(c.ok());
  EXPECT_EQ(c.code(), StatusCode::kCorruption);
  EXPECT_EQ(c.ToString(), "Corruption: checksum mismatch");
  Status u = Status::Unavailable("disk busy");
  EXPECT_EQ(u.code(), StatusCode::kUnavailable);
  EXPECT_EQ(u.ToString(), "Unavailable: disk busy");
}

TEST(Crc32Test, KnownVectorsAndSeedChaining) {
  // The canonical CRC-32 ("123456789" -> 0xCBF43926).
  EXPECT_EQ(Crc32("123456789", 9), 0xCBF43926u);
  EXPECT_EQ(Crc32("", 0), 0u);
  // Chaining via the seed equals hashing the concatenation.
  uint32_t whole = Crc32("hello world", 11);
  uint32_t chained = Crc32(" world", 6, Crc32("hello", 5));
  EXPECT_EQ(whole, chained);
  // Any bit flip changes the sum.
  std::string data(256, '\0');
  for (size_t i = 0; i < data.size(); ++i) data[i] = static_cast<char>(i);
  uint32_t base = Crc32(data.data(), data.size());
  data[100] ^= 0x40;
  EXPECT_NE(Crc32(data.data(), data.size()), base);
}

Result<int> ParsePositive(int x) {
  if (x <= 0) return Status::InvalidArgument("not positive");
  return x;
}

Result<int> DoubleIt(int x) {
  XO_ASSIGN_OR_RETURN(int v, ParsePositive(x));
  return v * 2;
}

TEST(ResultTest, ValuePath) {
  Result<int> r = DoubleIt(21);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
}

TEST(ResultTest, ErrorPath) {
  Result<int> r = DoubleIt(-1);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(ResultTest, MoveOnlyValues) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(7);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 7);
}

TEST(StrUtilTest, CaseConversions) {
  EXPECT_EQ(ToLower("SpEeCh"), "speech");
  EXPECT_EQ(ToUpper("act"), "ACT");
  EXPECT_TRUE(EqualsIgnoreCase("LINE", "line"));
  EXPECT_FALSE(EqualsIgnoreCase("LINE", "lines"));
}

TEST(StrUtilTest, SplitAndJoin) {
  auto parts = Split("a/b//c", '/');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(Join({"x", "y"}, "::"), "x::y");
  EXPECT_EQ(Join({}, ","), "");
}

TEST(StrUtilTest, StripWhitespace) {
  EXPECT_EQ(StripWhitespace("  a b \n"), "a b");
  EXPECT_EQ(StripWhitespace("\t\n "), "");
}

struct LikeCase {
  const char* value;
  const char* pattern;
  bool match;
};

class LikeMatchTest : public ::testing::TestWithParam<LikeCase> {};

TEST_P(LikeMatchTest, Matches) {
  const LikeCase& c = GetParam();
  EXPECT_EQ(LikeMatch(c.value, c.pattern), c.match)
      << c.value << " LIKE " << c.pattern;
}

INSTANTIATE_TEST_SUITE_P(
    Patterns, LikeMatchTest,
    ::testing::Values(
        LikeCase{"hello", "hello", true}, LikeCase{"hello", "h%", true},
        LikeCase{"hello", "%o", true}, LikeCase{"hello", "%ell%", true},
        LikeCase{"hello", "h_llo", true}, LikeCase{"hello", "h_lo", false},
        LikeCase{"hello", "%", true}, LikeCase{"", "%", true},
        LikeCase{"", "_", false}, LikeCase{"abc", "%a%b%c%", true},
        LikeCase{"my friend speaks", "%friend%", true},
        LikeCase{"friendly", "friend", false},
        LikeCase{"aaab", "%aab", true}, LikeCase{"abab", "%ab", true}));

TEST(VarintTest, SmallValues) {
  std::string buf;
  PutVarint(&buf, 0);
  PutVarint(&buf, 127);
  PutVarint(&buf, 128);
  size_t pos = 0;
  EXPECT_EQ(*GetVarint(buf, &pos), 0u);
  EXPECT_EQ(*GetVarint(buf, &pos), 127u);
  EXPECT_EQ(*GetVarint(buf, &pos), 128u);
  EXPECT_EQ(pos, buf.size());
}

TEST(VarintTest, TruncatedFails) {
  std::string buf;
  PutVarint(&buf, 1u << 20);
  buf.pop_back();
  size_t pos = 0;
  EXPECT_FALSE(GetVarint(buf, &pos).ok());
}

TEST(VarintTest, RandomRoundTrip) {
  std::mt19937_64 rng(11);
  std::string buf;
  std::vector<uint64_t> values;
  for (int i = 0; i < 1000; ++i) {
    uint64_t v = rng() >> (rng() % 64);
    values.push_back(v);
    PutVarint(&buf, v);
  }
  size_t pos = 0;
  for (uint64_t v : values) {
    auto got = GetVarint(buf, &pos);
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(*got, v);
  }
  EXPECT_EQ(pos, buf.size());
}

TEST(VarintTest, ZigZag) {
  for (int64_t v : {int64_t{0}, int64_t{1}, int64_t{-1}, int64_t{12345},
                    int64_t{-12345}, INT64_MAX, INT64_MIN}) {
    EXPECT_EQ(ZigZagDecode(ZigZagEncode(v)), v);
  }
  EXPECT_EQ(ZigZagEncode(0), 0u);
  EXPECT_EQ(ZigZagEncode(-1), 1u);
  EXPECT_EQ(ZigZagEncode(1), 2u);
}

TEST(HashTest, DistinctStrings) {
  EXPECT_NE(Hash64("a"), Hash64("b"));
  EXPECT_EQ(Hash64("speech"), Hash64("speech"));
  EXPECT_NE(Hash64(""), Hash64("x"));
}

}  // namespace
}  // namespace xorator
