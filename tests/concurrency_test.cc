// Multi-threaded stress over Database's statement-level entry points.
//
// The engine's components (buffer pool, executor, ...) are single-threaded
// by design; Database serializes Query/Execute/Checkpoint behind an internal
// mutex (see database.h), so concurrent *callers* must be safe. These tests
// hammer that boundary from many threads; under -fsanitize=thread (the
// ThreadSanitize build type) they double as a data-race detector for the
// locking.

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "benchutil/fixture.h"
#include "benchutil/workload.h"
#include "datagen/dtds.h"
#include "datagen/generators.h"

namespace xorator {
namespace {

using benchutil::BuildExperimentDb;
using benchutil::ExperimentDb;
using benchutil::ExperimentOptions;
using benchutil::Mapping;

class ConcurrencyTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    datagen::ShakespeareOptions opts;
    opts.plays = 3;
    opts.acts_per_play = 2;
    opts.scenes_per_act = 2;
    opts.speeches_per_scene = 6;
    corpus_ = new std::vector<std::unique_ptr<xml::Node>>(
        datagen::ShakespeareGenerator(opts).GenerateCorpus());
    std::vector<const xml::Node*> docs;
    for (const auto& d : *corpus_) docs.push_back(d.get());

    ExperimentOptions options;
    options.mapping = Mapping::kHybrid;
    auto built = BuildExperimentDb(datagen::kShakespeareDtd, docs, options);
    ASSERT_TRUE(built.ok()) << built.status().ToString();
    db_ = new ExperimentDb(std::move(*built));
  }

  static void TearDownTestSuite() {
    delete db_;
    db_ = nullptr;
    delete corpus_;
    corpus_ = nullptr;
  }

  static std::vector<std::unique_ptr<xml::Node>>* corpus_;
  static ExperimentDb* db_;
};

std::vector<std::unique_ptr<xml::Node>>* ConcurrencyTest::corpus_ = nullptr;
ExperimentDb* ConcurrencyTest::db_ = nullptr;

TEST_F(ConcurrencyTest, ParallelReadersSeeConsistentResults) {
  // Reference answers, computed single-threaded.
  std::vector<std::string> sqls;
  for (const auto& q : benchutil::ShakespeareQueries()) {
    sqls.push_back(q.hybrid_sql);
  }
  std::vector<size_t> expected_rows;
  for (const auto& sql : sqls) {
    auto r = db_->db->Query(sql);
    ASSERT_TRUE(r.ok()) << sql << "\n -> " << r.status().ToString();
    expected_rows.push_back(r->rows.size());
  }

  constexpr int kThreads = 8;
  constexpr int kRoundsPerThread = 12;
  std::atomic<int> mismatches{0};
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int round = 0; round < kRoundsPerThread; ++round) {
        // Stagger the starting query per thread so different statements
        // contend for the mutex in every round.
        size_t at = (static_cast<size_t>(t) + round) % sqls.size();
        auto r = db_->db->Query(sqls[at]);
        if (!r.ok()) {
          failures.fetch_add(1, std::memory_order_relaxed);
          continue;
        }
        if (r->rows.size() != expected_rows[at]) {
          mismatches.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(mismatches.load(), 0);
}

TEST_F(ConcurrencyTest, ReadersRaceCheckpointAndStats) {
  // Mixed workload: readers plus threads driving the mutating maintenance
  // entry points (Checkpoint is a no-op persistence-wise for memory-backed
  // databases but still walks the buffer pool; RunStats rewrites catalog
  // statistics that the planner reads).
  const std::string sql = benchutil::ShakespeareQueries().front().hybrid_sql;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 8; ++i) {
        if (!db_->db->Query(sql).ok()) {
          failures.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  threads.emplace_back([&] {
    for (int i = 0; i < 8; ++i) {
      if (!db_->db->Checkpoint().ok()) {
        failures.fetch_add(1, std::memory_order_relaxed);
      }
    }
  });
  threads.emplace_back([&] {
    for (int i = 0; i < 4; ++i) {
      if (!db_->db->RunStats().ok()) {
        failures.fetch_add(1, std::memory_order_relaxed);
      }
    }
  });
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);
}

}  // namespace
}  // namespace xorator
