// Multi-threaded stress over Database's statement-level entry points.
//
// Database synchronizes statements on an annotated reader/writer lock
// (see database.h and DESIGN.md section 10): SELECT/EXPLAIN take it shared
// and run genuinely in parallel, while mutating statements take it
// exclusively, and the components underneath (BufferPool, Wal, the Catalog
// registry) are internally synchronized. These tests hammer that boundary
// from many threads — including a rendezvous test that FAILS unless N
// readers really are inside Query() simultaneously — and under
// -fsanitize=thread (the ThreadSanitize build type) they double as a
// data-race detector for the locking.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "benchutil/fixture.h"
#include "benchutil/workload.h"
#include "datagen/dtds.h"
#include "datagen/generators.h"
#include "ordb/database.h"

namespace xorator {
namespace {

using benchutil::BuildExperimentDb;
using benchutil::ExperimentDb;
using benchutil::ExperimentOptions;
using benchutil::Mapping;

class ConcurrencyTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    datagen::ShakespeareOptions opts;
    opts.plays = 3;
    opts.acts_per_play = 2;
    opts.scenes_per_act = 2;
    opts.speeches_per_scene = 6;
    corpus_ = new std::vector<std::unique_ptr<xml::Node>>(
        datagen::ShakespeareGenerator(opts).GenerateCorpus());
    std::vector<const xml::Node*> docs;
    for (const auto& d : *corpus_) docs.push_back(d.get());

    ExperimentOptions options;
    options.mapping = Mapping::kHybrid;
    auto built = BuildExperimentDb(datagen::kShakespeareDtd, docs, options);
    ASSERT_TRUE(built.ok()) << built.status().ToString();
    db_ = new ExperimentDb(std::move(*built));

    // The XADT-mapping twin, used by the cancellation tests: its speech
    // table keeps LINE content as XADT values, so queries spend their time
    // inside findKeyInElm fragment scans.
    ExperimentOptions xadt_options;
    xadt_options.mapping = Mapping::kXorator;
    auto xbuilt = BuildExperimentDb(datagen::kShakespeareDtd, docs,
                                    xadt_options);
    ASSERT_TRUE(xbuilt.ok()) << xbuilt.status().ToString();
    xadt_db_ = new ExperimentDb(std::move(*xbuilt));
  }

  static void TearDownTestSuite() {
    delete xadt_db_;
    xadt_db_ = nullptr;
    delete db_;
    db_ = nullptr;
    delete corpus_;
    corpus_ = nullptr;
  }

  static std::vector<std::unique_ptr<xml::Node>>* corpus_;
  static ExperimentDb* db_;
  static ExperimentDb* xadt_db_;
};

std::vector<std::unique_ptr<xml::Node>>* ConcurrencyTest::corpus_ = nullptr;
ExperimentDb* ConcurrencyTest::db_ = nullptr;
ExperimentDb* ConcurrencyTest::xadt_db_ = nullptr;

TEST_F(ConcurrencyTest, ParallelReadersSeeConsistentResults) {
  // Reference answers, computed single-threaded.
  std::vector<std::string> sqls;
  for (const auto& q : benchutil::ShakespeareQueries()) {
    sqls.push_back(q.hybrid_sql);
  }
  std::vector<size_t> expected_rows;
  for (const auto& sql : sqls) {
    auto r = db_->db->Query(sql);
    ASSERT_TRUE(r.ok()) << sql << "\n -> " << r.status().ToString();
    expected_rows.push_back(r->rows.size());
  }

  constexpr int kThreads = 8;
  constexpr int kRoundsPerThread = 12;
  std::atomic<int> mismatches{0};
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int round = 0; round < kRoundsPerThread; ++round) {
        // Stagger the starting query per thread so different statements
        // contend for the mutex in every round.
        size_t at = (static_cast<size_t>(t) + round) % sqls.size();
        auto r = db_->db->Query(sqls[at]);
        if (!r.ok()) {
          failures.fetch_add(1, std::memory_order_relaxed);
          continue;
        }
        if (r->rows.size() != expected_rows[at]) {
          mismatches.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(mismatches.load(), 0);
}

// Proves the statement lock really is shared for SELECT: every reader
// blocks inside a rendezvous UDF until all of them have entered Query().
// Under the old exclusive statement mutex the first reader would hold the
// lock while waiting for readers that can never enter — a guaranteed
// timeout. The 10-second deadline turns that regression into a clean
// failure instead of a hung test binary.
TEST(SharedStatementLockTest, ReadersRunInParallel) {
  auto opened = ordb::Database::Open({});
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  std::unique_ptr<ordb::Database> db = std::move(*opened);
  ASSERT_TRUE(db->Execute("CREATE TABLE rv (a INTEGER)").ok());
  ASSERT_TRUE(db->Execute("INSERT INTO rv VALUES (7)").ok());

  constexpr int kReaders = 4;
  struct Rendezvous {
    std::mutex mu;
    std::condition_variable cv;
    int arrived = 0;
  };
  auto rv = std::make_shared<Rendezvous>();
  ordb::ScalarFunction fn;
  fn.name = "rendezvous";
  fn.return_type = ordb::TypeId::kInteger;
  fn.arity = 1;
  fn.impl =
      [rv](const std::vector<ordb::Value>& args) -> Result<ordb::Value> {
    std::unique_lock<std::mutex> lock(rv->mu);
    ++rv->arrived;
    rv->cv.notify_all();
    if (!rv->cv.wait_for(lock, std::chrono::seconds(10),
                         [&rv] { return rv->arrived >= kReaders; })) {
      return Status::Internal("rendezvous timed out with " +
                              std::to_string(rv->arrived) + "/" +
                              std::to_string(kReaders) +
                              " readers inside Query(): SELECTs are "
                              "serializing instead of sharing the lock");
    }
    return args[0];
  };
  ASSERT_TRUE(db->functions()->RegisterScalar(std::move(fn)).ok());

  std::atomic<int> ok_count{0};
  std::vector<std::string> errors(kReaders);
  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int t = 0; t < kReaders; ++t) {
    readers.emplace_back([&, t] {
      auto r = db->Query("SELECT rendezvous(a) FROM rv");
      if (r.ok() && r->rows.size() == 1) {
        ok_count.fetch_add(1, std::memory_order_relaxed);
      } else {
        errors[t] = r.status().ToString();
      }
    });
  }
  for (auto& th : readers) th.join();
  EXPECT_EQ(ok_count.load(), kReaders)
      << "first error: " << errors[0] << errors[1] << errors[2] << errors[3];

  // The shared/exclusive transition still works after the rendezvous:
  // writers (Checkpoint) and further readers interleave cleanly.
  ASSERT_TRUE(db->Checkpoint().ok());
  auto after = db->Query("SELECT a FROM rv");
  ASSERT_TRUE(after.ok()) << after.status().ToString();
  EXPECT_EQ(after->rows.size(), 1u);
}

TEST_F(ConcurrencyTest, CrossThreadCancelStopsALongSelect) {
  // A reader holding the statement lock shared must stay cancellable from
  // another thread: Database::Cancel() synchronizes only on the guard
  // registry, never on the statement lock (DESIGN.md section 12). The
  // query projects findKeyInElm over a three-way self cross product —
  // ~370k XADT fragment scans, far too slow to finish before the
  // canceller lands. (The UDF sits in the SELECT list on purpose: a
  // single-table WHERE predicate would be pushed down to one scan and
  // evaluated only once per base row.)
  constexpr uint64_t kQueryId = 77;
  std::atomic<bool> cancelled{false};
  std::thread canceller([&] {
    // Spin until the statement has registered itself, then cancel it. The
    // registration happens before Query() queues on the statement lock, so
    // this terminates quickly; the time bound is a safety valve only.
    auto give_up = std::chrono::steady_clock::now() + std::chrono::seconds(30);
    while (std::chrono::steady_clock::now() < give_up) {
      if (xadt_db_->db->Cancel(kQueryId).ok()) {
        cancelled.store(true, std::memory_order_relaxed);
        return;
      }
      std::this_thread::yield();
    }
  });
  ordb::QueryOptions options;
  options.query_id = kQueryId;
  auto r = xadt_db_->db->Query(
      "SELECT findKeyInElm(s1.speech_line, 'LINE', 'zzznotthere') AS k "
      "FROM speech s1, speech s2, speech s3",
      options);
  canceller.join();
  EXPECT_TRUE(cancelled.load());
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kCancelled) << r.status().ToString();
  // Graceful degradation: every pin released, and the database is fully
  // usable afterwards.
  EXPECT_EQ(xadt_db_->db->buffer_pool()->PinnedFrameCount(), 0u);
  auto again = xadt_db_->db->Query("SELECT COUNT(*) AS n FROM speech");
  EXPECT_TRUE(again.ok()) << again.status().ToString();
}

TEST_F(ConcurrencyTest, CancelRacesManyGuardedReaders) {
  // Several guarded readers run while a canceller sprays Cancel() at every
  // id, registered or not. Every query must end in exactly one of two
  // clean states (finished or kCancelled), with no pins left behind.
  constexpr int kReaders = 4;
  std::atomic<int> bad{0};
  std::atomic<bool> stop{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < kReaders; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 6; ++i) {
        ordb::QueryOptions options;
        options.query_id = 100 + t;
        auto r = xadt_db_->db->Query(
            "SELECT findKeyInElm(s1.speech_line, 'LINE', 'zzznotthere') AS k "
            "FROM speech s1, speech s2",
            options);
        if (!r.ok() && r.status().code() != StatusCode::kCancelled) {
          bad.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  threads.emplace_back([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      for (int t = 0; t < kReaders; ++t) {
        // NotFound (nothing registered under the id right now) is fine.
        Status s = xadt_db_->db->Cancel(100 + t);
        if (!s.ok() && s.code() != StatusCode::kNotFound) {
          bad.fetch_add(1, std::memory_order_relaxed);
        }
      }
      std::this_thread::yield();
    }
  });
  for (int t = 0; t < kReaders; ++t) threads[t].join();
  stop.store(true, std::memory_order_relaxed);
  threads.back().join();
  EXPECT_EQ(bad.load(), 0);
  EXPECT_EQ(xadt_db_->db->buffer_pool()->PinnedFrameCount(), 0u);
}

TEST_F(ConcurrencyTest, ReadersRaceCheckpointAndStats) {
  // Mixed workload: readers plus threads driving the mutating maintenance
  // entry points (Checkpoint is a no-op persistence-wise for memory-backed
  // databases but still walks the buffer pool; RunStats rewrites catalog
  // statistics that the planner reads).
  const std::string sql = benchutil::ShakespeareQueries().front().hybrid_sql;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 8; ++i) {
        if (!db_->db->Query(sql).ok()) {
          failures.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  threads.emplace_back([&] {
    for (int i = 0; i < 8; ++i) {
      if (!db_->db->Checkpoint().ok()) {
        failures.fetch_add(1, std::memory_order_relaxed);
      }
    }
  });
  threads.emplace_back([&] {
    for (int i = 0; i < 4; ++i) {
      if (!db_->db->RunStats().ok()) {
        failures.fetch_add(1, std::memory_order_relaxed);
      }
    }
  });
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);
}

}  // namespace
}  // namespace xorator
