#include <gtest/gtest.h>

#include <functional>
#include <map>
#include <set>

#include "datagen/dtds.h"
#include "datagen/generators.h"
#include "dtdgraph/simplify.h"
#include "xml/dtd.h"
#include "xml/parser.h"
#include "xml/serializer.h"

namespace xorator::datagen {
namespace {

// A light conformance checker: every element in the document must be
// declared, and its child element names must be allowed by the simplified
// content model (with One/Optional/Star multiplicity respected).
void CheckConforms(const xml::Node& elem, const dtdgraph::SimplifiedDtd& dtd,
                   int* checked) {
  const dtdgraph::SimplifiedElement* decl = dtd.Find(elem.name());
  ASSERT_NE(decl, nullptr) << "undeclared element " << elem.name();
  ++*checked;
  std::map<std::string, int> counts;
  for (const xml::Node* child : elem.ChildElements()) {
    counts[child->name()]++;
  }
  std::map<std::string, xml::Occurrence> allowed;
  for (const auto& spec : decl->children) {
    allowed[spec.name] = spec.occurrence;
  }
  for (const auto& [name, count] : counts) {
    auto it = allowed.find(name);
    ASSERT_NE(it, allowed.end())
        << elem.name() << " has unexpected child " << name;
    if (it->second != xml::Occurrence::kStar) {
      EXPECT_LE(count, 1) << elem.name() << "/" << name;
    }
  }
  for (const auto& c : elem.children()) {
    if (c->is_element()) CheckConforms(*c, dtd, checked);
  }
}

void CheckCorpusConforms(const char* dtd_text,
                         const std::vector<std::unique_ptr<xml::Node>>& docs) {
  auto dtd = xml::ParseDtd(dtd_text);
  ASSERT_TRUE(dtd.ok());
  auto simplified = dtdgraph::Simplify(*dtd);
  ASSERT_TRUE(simplified.ok());
  int checked = 0;
  for (const auto& doc : docs) {
    CheckConforms(*doc, *simplified, &checked);
  }
  EXPECT_GT(checked, 100);
}

TEST(ShakespeareGeneratorTest, Deterministic) {
  ShakespeareOptions opts;
  opts.plays = 2;
  ShakespeareGenerator gen1(opts);
  ShakespeareGenerator gen2(opts);
  EXPECT_EQ(xml::Serialize(*gen1.GeneratePlay(1)),
            xml::Serialize(*gen2.GeneratePlay(1)));
  opts.seed = 43;
  ShakespeareGenerator gen3(opts);
  EXPECT_NE(xml::Serialize(*gen1.GeneratePlay(1)),
            xml::Serialize(*gen3.GeneratePlay(1)));
}

TEST(ShakespeareGeneratorTest, ConformsToDtd) {
  ShakespeareOptions opts;
  opts.plays = 3;
  CheckCorpusConforms(kShakespeareDtd, ShakespeareGenerator(opts).GenerateCorpus());
}

TEST(ShakespeareGeneratorTest, QueryKeywordsPresent) {
  ShakespeareOptions opts;
  opts.plays = 6;
  auto corpus = ShakespeareGenerator(opts).GenerateCorpus();
  std::string all;
  for (const auto& doc : corpus) all += xml::Serialize(*doc);
  EXPECT_NE(all.find("Romeo and Juliet"), std::string::npos);
  EXPECT_NE(all.find("<SPEAKER>ROMEO</SPEAKER>"), std::string::npos);
  EXPECT_NE(all.find("friend"), std::string::npos);
  EXPECT_NE(all.find("love"), std::string::npos);
  EXPECT_NE(all.find("Rising"), std::string::npos);
  EXPECT_NE(all.find("<STAGEDIR>"), std::string::npos);
  EXPECT_NE(all.find("<PROLOGUE>"), std::string::npos);
}

TEST(ShakespeareGeneratorTest, ParsesBack) {
  ShakespeareOptions opts;
  opts.plays = 1;
  auto corpus = ShakespeareGenerator(opts).GenerateCorpus();
  std::string text = xml::Serialize(*corpus[0]);
  auto doc = xml::ParseDocument(text);
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  EXPECT_EQ(xml::Serialize(*doc->root), text);
}

TEST(SigmodGeneratorTest, ConformsToDtd) {
  SigmodOptions opts;
  opts.documents = 20;
  CheckCorpusConforms(kSigmodDtd, SigmodGenerator(opts).GenerateCorpus());
}

TEST(SigmodGeneratorTest, KeywordsAndAttributes) {
  SigmodOptions opts;
  opts.documents = 300;
  auto corpus = SigmodGenerator(opts).GenerateCorpus();
  std::string all;
  for (const auto& doc : corpus) all += xml::Serialize(*doc);
  EXPECT_NE(all.find("Join"), std::string::npos);
  EXPECT_NE(all.find("Worthy"), std::string::npos);
  EXPECT_NE(all.find("Bird"), std::string::npos);
  EXPECT_NE(all.find("AuthorPosition=\"2\""), std::string::npos);
  EXPECT_NE(all.find("SectionPosition"), std::string::npos);
  EXPECT_NE(all.find("href"), std::string::npos);
}

TEST(SigmodGeneratorTest, SecondAuthorsExist) {
  SigmodOptions opts;
  opts.documents = 50;
  auto corpus = SigmodGenerator(opts).GenerateCorpus();
  int multi_author = 0;
  std::function<void(const xml::Node&)> walk = [&](const xml::Node& n) {
    if (n.name() == "authors" && n.ChildElements("author").size() >= 2) {
      ++multi_author;
    }
    for (const auto& c : n.children()) {
      if (c->is_element()) walk(*c);
    }
  };
  for (const auto& doc : corpus) walk(*doc);
  EXPECT_GT(multi_author, 10);
}

TEST(CorpusBytesTest, ScalesRoughlyLinearly) {
  ShakespeareOptions small;
  small.plays = 2;
  ShakespeareOptions large;
  large.plays = 8;
  uint64_t small_bytes =
      CorpusBytes(ShakespeareGenerator(small).GenerateCorpus());
  uint64_t large_bytes =
      CorpusBytes(ShakespeareGenerator(large).GenerateCorpus());
  EXPECT_GT(small_bytes, 10000u);
  EXPECT_GT(large_bytes, small_bytes * 2);
}

TEST(RandomDocGeneratorTest, ConformsForAllSeeds) {
  auto dtd = xml::ParseDtd(kSigmodDtd);
  ASSERT_TRUE(dtd.ok());
  auto simplified = dtdgraph::Simplify(*dtd);
  ASSERT_TRUE(simplified.ok());
  for (uint64_t seed = 0; seed < 25; ++seed) {
    RandomDocOptions opts;
    opts.seed = seed;
    RandomDocGenerator gen(&*dtd, opts);
    auto doc = gen.Generate("PP");
    ASSERT_TRUE(doc.ok()) << doc.status().ToString();
    int checked = 0;
    CheckConforms(**doc, *simplified, &checked);
    EXPECT_GT(checked, 0);
  }
}

TEST(RandomDocGeneratorTest, RecursiveDtdTerminates) {
  auto dtd = xml::ParseDtd(
      "<!ELEMENT part (name, part*)> <!ELEMENT name (#PCDATA)>");
  ASSERT_TRUE(dtd.ok());
  RandomDocOptions opts;
  opts.seed = 3;
  opts.max_repeat = 2;
  opts.max_depth = 6;
  RandomDocGenerator gen(&*dtd, opts);
  auto doc = gen.Generate("part");
  ASSERT_TRUE(doc.ok());
  // Depth is bounded by max_depth.
  std::function<int(const xml::Node&)> depth = [&](const xml::Node& n) {
    int best = 0;
    for (const auto& c : n.children()) {
      if (c->is_element()) best = std::max(best, 1 + depth(*c));
    }
    return best;
  };
  EXPECT_LE(depth(**doc), opts.max_depth + 1);
}

TEST(RandomDocGeneratorTest, UndeclaredRootRejected) {
  auto dtd = xml::ParseDtd("<!ELEMENT a (#PCDATA)>");
  ASSERT_TRUE(dtd.ok());
  RandomDocGenerator gen(&*dtd, {});
  EXPECT_FALSE(gen.Generate("nope").ok());
}

}  // namespace
}  // namespace xorator::datagen
