#include <gtest/gtest.h>

#include "datagen/dtds.h"
#include "dtdgraph/simplify.h"
#include "xml/dtd.h"

namespace xorator {
namespace {

using xml::ContentKind;
using xml::Dtd;
using xml::ElementDecl;
using xml::Occurrence;
using xml::ParseDtd;

TEST(DtdParserTest, SimpleElementDecl) {
  auto dtd = ParseDtd("<!ELEMENT a (b, c?)> <!ELEMENT b (#PCDATA)> "
                      "<!ELEMENT c EMPTY>");
  ASSERT_TRUE(dtd.ok()) << dtd.status().ToString();
  const ElementDecl* a = dtd->Find("a");
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a->content_kind, ContentKind::kChildren);
  EXPECT_EQ(a->content->ToString(), "(b,c?)");
  EXPECT_EQ(dtd->Find("b")->content_kind, ContentKind::kMixed);
  EXPECT_EQ(dtd->Find("c")->content_kind, ContentKind::kEmpty);
}

TEST(DtdParserTest, OccurrenceOperators) {
  auto dtd = ParseDtd("<!ELEMENT a (b?, c*, d+, e)> <!ELEMENT b (#PCDATA)>"
                      "<!ELEMENT c (#PCDATA)> <!ELEMENT d (#PCDATA)>"
                      "<!ELEMENT e (#PCDATA)>");
  ASSERT_TRUE(dtd.ok());
  EXPECT_EQ(dtd->Find("a")->content->ToString(), "(b?,c*,d+,e)");
}

TEST(DtdParserTest, ChoiceAndNesting) {
  auto dtd = ParseDtd(
      "<!ELEMENT a (b, (c | d)*, (e, f)+)> <!ELEMENT b (#PCDATA)>"
      "<!ELEMENT c (#PCDATA)> <!ELEMENT d (#PCDATA)>"
      "<!ELEMENT e (#PCDATA)> <!ELEMENT f (#PCDATA)>");
  ASSERT_TRUE(dtd.ok());
  EXPECT_EQ(dtd->Find("a")->content->ToString(), "(b,(c|d)*,(e,f)+)");
}

TEST(DtdParserTest, MixedContent) {
  auto dtd = ParseDtd("<!ELEMENT line (#PCDATA | stagedir)*>"
                      "<!ELEMENT stagedir (#PCDATA)>");
  ASSERT_TRUE(dtd.ok());
  EXPECT_EQ(dtd->Find("line")->content_kind, ContentKind::kMixed);
}

TEST(DtdParserTest, MixedSeparatorsRejected) {
  EXPECT_FALSE(ParseDtd("<!ELEMENT a (b, c | d)>").ok());
}

TEST(DtdParserTest, DuplicateDeclRejected) {
  EXPECT_FALSE(
      ParseDtd("<!ELEMENT a (#PCDATA)> <!ELEMENT a (#PCDATA)>").ok());
}

TEST(DtdParserTest, Attlist) {
  auto dtd = ParseDtd(
      "<!ELEMENT author (#PCDATA)>"
      "<!ATTLIST author AuthorPosition CDATA #IMPLIED id ID #REQUIRED>");
  ASSERT_TRUE(dtd.ok()) << dtd.status().ToString();
  const ElementDecl* author = dtd->Find("author");
  ASSERT_EQ(author->attributes.size(), 2u);
  EXPECT_EQ(author->attributes[0].name, "AuthorPosition");
  EXPECT_EQ(author->attributes[0].default_decl, "#IMPLIED");
  EXPECT_EQ(author->attributes[1].name, "id");
  EXPECT_EQ(author->attributes[1].default_decl, "#REQUIRED");
}

TEST(DtdParserTest, AttlistBeforeElement) {
  auto dtd = ParseDtd(
      "<!ATTLIST t k CDATA #IMPLIED> <!ELEMENT t (#PCDATA)>");
  ASSERT_TRUE(dtd.ok());
  EXPECT_EQ(dtd->Find("t")->attributes.size(), 1u);
}

TEST(DtdParserTest, ParameterEntityExpansion) {
  auto dtd = ParseDtd(
      "<!ENTITY % Xlink \"href CDATA #IMPLIED\">"
      "<!ELEMENT idx (#PCDATA)>"
      "<!ATTLIST idx %Xlink;>");
  ASSERT_TRUE(dtd.ok()) << dtd.status().ToString();
  ASSERT_EQ(dtd->Find("idx")->attributes.size(), 1u);
  EXPECT_EQ(dtd->Find("idx")->attributes[0].name, "href");
}

TEST(DtdParserTest, PaperDtdsParse) {
  for (const char* text : {datagen::kPlaysDtd, datagen::kShakespeareDtd,
                           datagen::kSigmodDtd}) {
    auto dtd = ParseDtd(text);
    ASSERT_TRUE(dtd.ok()) << dtd.status().ToString();
    EXPECT_TRUE(dtd->UndeclaredReferences().empty());
    ASSERT_EQ(dtd->RootCandidates().size(), 1u);
  }
}

TEST(DtdParserTest, RootCandidates) {
  auto dtd = ParseDtd(datagen::kSigmodDtd);
  ASSERT_TRUE(dtd.ok());
  EXPECT_EQ(dtd->RootCandidates()[0], "PP");
}

// ---------------------------------------------------------- simplification

using dtdgraph::Simplify;

const dtdgraph::SimplifiedElement& Get(const dtdgraph::SimplifiedDtd& dtd,
                                       const std::string& name) {
  const auto* e = dtd.Find(name);
  EXPECT_NE(e, nullptr) << name;
  return *e;
}

TEST(SimplifyTest, PlusBecomesStar) {
  auto dtd = ParseDtd("<!ELEMENT a (b+)> <!ELEMENT b (#PCDATA)>");
  auto s = Simplify(*dtd);
  ASSERT_TRUE(s.ok());
  const auto& a = Get(*s, "a");
  ASSERT_EQ(a.children.size(), 1u);
  EXPECT_EQ(a.children[0].occurrence, xml::Occurrence::kStar);
}

TEST(SimplifyTest, GroupingMergesRepeats) {
  // e0, e1, e1, e2 -> e0, e1*, e2 (the paper's grouping rule).
  auto dtd = ParseDtd(
      "<!ELEMENT a (e0, e1, e1, e2)> <!ELEMENT e0 (#PCDATA)>"
      "<!ELEMENT e1 (#PCDATA)> <!ELEMENT e2 (#PCDATA)>");
  auto s = Simplify(*dtd);
  ASSERT_TRUE(s.ok());
  const auto& a = Get(*s, "a");
  ASSERT_EQ(a.children.size(), 3u);
  EXPECT_EQ(a.children[0].name, "e0");
  EXPECT_EQ(a.children[0].occurrence, Occurrence::kOne);
  EXPECT_EQ(a.children[1].name, "e1");
  EXPECT_EQ(a.children[1].occurrence, Occurrence::kStar);
  EXPECT_EQ(a.children[2].occurrence, Occurrence::kOne);
}

TEST(SimplifyTest, FlatteningDistributesStar) {
  // (b, c)* -> b*, c*.
  auto dtd = ParseDtd("<!ELEMENT a ((b, c)*)> <!ELEMENT b (#PCDATA)>"
                      "<!ELEMENT c (#PCDATA)>");
  auto s = Simplify(*dtd);
  ASSERT_TRUE(s.ok());
  const auto& a = Get(*s, "a");
  ASSERT_EQ(a.children.size(), 2u);
  EXPECT_EQ(a.children[0].occurrence, Occurrence::kStar);
  EXPECT_EQ(a.children[1].occurrence, Occurrence::kStar);
}

TEST(SimplifyTest, ChoiceMakesAlternativesOptional) {
  auto dtd = ParseDtd("<!ELEMENT a (b | c)> <!ELEMENT b (#PCDATA)>"
                      "<!ELEMENT c (#PCDATA)>");
  auto s = Simplify(*dtd);
  ASSERT_TRUE(s.ok());
  const auto& a = Get(*s, "a");
  EXPECT_EQ(a.children[0].occurrence, Occurrence::kOptional);
  EXPECT_EQ(a.children[1].occurrence, Occurrence::kOptional);
}

TEST(SimplifyTest, StarredChoiceMakesAlternativesStarred) {
  auto dtd = ParseDtd("<!ELEMENT a ((b | c)+)> <!ELEMENT b (#PCDATA)>"
                      "<!ELEMENT c (#PCDATA)>");
  auto s = Simplify(*dtd);
  ASSERT_TRUE(s.ok());
  const auto& a = Get(*s, "a");
  EXPECT_EQ(a.children[0].occurrence, Occurrence::kStar);
  EXPECT_EQ(a.children[1].occurrence, Occurrence::kStar);
}

TEST(SimplifyTest, PaperPlaysExample) {
  // Figure 1 -> Figure 2 of the paper.
  auto dtd = ParseDtd(datagen::kPlaysDtd);
  auto s = Simplify(*dtd);
  ASSERT_TRUE(s.ok()) << s.status().ToString();
  const auto& play = Get(*s, "PLAY");
  ASSERT_EQ(play.children.size(), 2u);
  EXPECT_EQ(play.children[0].name, "INDUCT");
  EXPECT_EQ(play.children[0].occurrence, Occurrence::kOptional);
  EXPECT_EQ(play.children[1].name, "ACT");
  EXPECT_EQ(play.children[1].occurrence, Occurrence::kStar);

  // SPEECH: (SPEAKER, LINE)+ -> SPEAKER*, LINE*.
  const auto& speech = Get(*s, "SPEECH");
  ASSERT_EQ(speech.children.size(), 2u);
  EXPECT_EQ(speech.children[0].occurrence, Occurrence::kStar);
  EXPECT_EQ(speech.children[1].occurrence, Occurrence::kStar);

  // SCENE: (TITLE, SUBTITLE*, (SPEECH | SUBHEAD)+) ->
  //        TITLE, SUBTITLE*, SPEECH*, SUBHEAD*.
  const auto& scene = Get(*s, "SCENE");
  ASSERT_EQ(scene.children.size(), 4u);
  EXPECT_EQ(scene.children[0].name, "TITLE");
  EXPECT_EQ(scene.children[0].occurrence, Occurrence::kOne);
  EXPECT_EQ(scene.children[2].name, "SPEECH");
  EXPECT_EQ(scene.children[2].occurrence, Occurrence::kStar);
  EXPECT_EQ(scene.children[3].name, "SUBHEAD");
  EXPECT_EQ(scene.children[3].occurrence, Occurrence::kStar);
}

TEST(SimplifyTest, MixedContentFlag) {
  auto dtd = ParseDtd("<!ELEMENT line (#PCDATA | stagedir)*>"
                      "<!ELEMENT stagedir (#PCDATA)>");
  auto s = Simplify(*dtd);
  ASSERT_TRUE(s.ok());
  const auto& line = Get(*s, "line");
  EXPECT_TRUE(line.has_pcdata);
  ASSERT_EQ(line.children.size(), 1u);
  EXPECT_EQ(line.children[0].occurrence, Occurrence::kStar);
}

TEST(SimplifyTest, UndeclaredReferenceFails) {
  auto dtd = ParseDtd("<!ELEMENT a (ghost)>");
  ASSERT_TRUE(dtd.ok());
  EXPECT_FALSE(Simplify(*dtd).ok());
}

TEST(SimplifyTest, RootsDetected) {
  auto dtd = ParseDtd(datagen::kShakespeareDtd);
  auto s = Simplify(*dtd);
  ASSERT_TRUE(s.ok());
  auto roots = s->Roots();
  ASSERT_EQ(roots.size(), 1u);
  EXPECT_EQ(roots[0], "PLAY");
}

}  // namespace
}  // namespace xorator
