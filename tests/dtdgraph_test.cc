#include <gtest/gtest.h>

#include "datagen/dtds.h"
#include "dtdgraph/dtd_graph.h"
#include "xml/dtd.h"

namespace xorator::dtdgraph {
namespace {

Result<DtdGraph> BuildGraph(const char* dtd_text, bool duplicate) {
  XO_ASSIGN_OR_RETURN(xml::Dtd dtd, xml::ParseDtd(dtd_text));
  XO_ASSIGN_OR_RETURN(SimplifiedDtd s, Simplify(dtd));
  return DtdGraph::Build(s, {.duplicate_shared_leaves = duplicate});
}

TEST(DtdGraphTest, BasicStructure) {
  auto g = BuildGraph("<!ELEMENT a (b*, c?)> <!ELEMENT b (#PCDATA)>"
                      "<!ELEMENT c (#PCDATA)>",
                      false);
  ASSERT_TRUE(g.ok());
  ASSERT_EQ(g->roots().size(), 1u);
  const GraphNode& a = g->node(g->roots()[0]);
  EXPECT_EQ(a.element, "a");
  ASSERT_EQ(a.children.size(), 2u);
  EXPECT_EQ(a.children[0].occurrence, Occurrence::kStar);
  EXPECT_EQ(a.children[1].occurrence, Occurrence::kOptional);
  int b = g->FindId("b");
  EXPECT_TRUE(g->BelowStar(b));
  EXPECT_TRUE(g->HasStarredChild(g->roots()[0]));
  EXPECT_FALSE(g->BelowStar(g->FindId("c")));
}

TEST(DtdGraphTest, InDegreeCountsDistinctParents) {
  auto g = BuildGraph(
      "<!ELEMENT a (t, b*)> <!ELEMENT b (t)> <!ELEMENT t (#PCDATA)>", false);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->InDegree(g->FindId("t")), 2);
  EXPECT_EQ(g->InDegree(g->FindId("b")), 1);
}

TEST(DtdGraphTest, SharedLeafDuplication) {
  // The paper's Figure 3 vs Figure 4: shared PCDATA leaves are duplicated
  // per parent in the revised graph.
  auto shared = BuildGraph(
      "<!ELEMENT a (t, b*)> <!ELEMENT b (t)> <!ELEMENT t (#PCDATA)>", false);
  auto dup = BuildGraph(
      "<!ELEMENT a (t, b*)> <!ELEMENT b (t)> <!ELEMENT t (#PCDATA)>", true);
  ASSERT_TRUE(shared.ok());
  ASSERT_TRUE(dup.ok());
  EXPECT_EQ(shared->nodes().size(), 3u);
  // Duplicated graph: a, b, t (orphan source), t#1, t#2.
  EXPECT_EQ(dup->nodes().size(), 5u);
  EXPECT_NE(dup->FindId("t#1"), -1);
  EXPECT_NE(dup->FindId("t#2"), -1);
  // Each copy has exactly one parent.
  EXPECT_EQ(dup->InDegree(dup->FindId("t#1")), 1);
  // The orphan source is not a root.
  ASSERT_EQ(dup->roots().size(), 1u);
  EXPECT_EQ(dup->node(dup->roots()[0]).element, "a");
}

TEST(DtdGraphTest, NonSharedLeafNotDuplicated) {
  auto dup = BuildGraph("<!ELEMENT a (b)> <!ELEMENT b (#PCDATA)>", true);
  ASSERT_TRUE(dup.ok());
  EXPECT_EQ(dup->nodes().size(), 2u);
}

TEST(DtdGraphTest, SharedNonLeafNotDuplicated) {
  auto dup = BuildGraph(
      "<!ELEMENT a (m, b*)> <!ELEMENT b (m)> <!ELEMENT m (x)>"
      "<!ELEMENT x (#PCDATA)>",
      true);
  ASSERT_TRUE(dup.ok());
  EXPECT_EQ(dup->InDegree(dup->FindId("m")), 2);
}

TEST(DtdGraphTest, DescendantsAndRecursion) {
  auto g = BuildGraph(
      "<!ELEMENT a (b)> <!ELEMENT b (c?, a?)> <!ELEMENT c (#PCDATA)>", false);
  ASSERT_TRUE(g.ok());
  bool recursive = false;
  auto desc = g->Descendants(g->FindId("a"), &recursive);
  EXPECT_TRUE(recursive);
  EXPECT_TRUE(desc.count(g->FindId("b")));
  EXPECT_TRUE(desc.count(g->FindId("c")));

  recursive = false;
  auto c_desc = g->Descendants(g->FindId("c"), &recursive);
  EXPECT_FALSE(recursive);
  EXPECT_TRUE(c_desc.empty());
}

TEST(DtdGraphTest, ShakespeareGraphShape) {
  auto g = BuildGraph(datagen::kShakespeareDtd, false);
  ASSERT_TRUE(g.ok());
  ASSERT_EQ(g->roots().size(), 1u);
  EXPECT_EQ(g->node(g->roots()[0]).element, "PLAY");
  // TITLE is shared by 7 parents in the unduplicated graph.
  EXPECT_EQ(g->InDegree(g->FindId("TITLE")), 7);
  // SPEECH is shared by INDUCT, SCENE, PROLOGUE, EPILOGUE.
  EXPECT_EQ(g->InDegree(g->FindId("SPEECH")), 4);
  // LINE is a non-leaf (it contains STAGEDIR).
  EXPECT_FALSE(g->node(g->FindId("LINE")).is_leaf());
  EXPECT_TRUE(g->node(g->FindId("LINE")).has_pcdata);
}

TEST(DtdGraphTest, ShakespeareDuplicatedLeafCopies) {
  auto g = BuildGraph(datagen::kShakespeareDtd, true);
  ASSERT_TRUE(g.ok());
  // TITLE has 7 copies; the original is an orphan source.
  int copies = 0;
  for (const GraphNode& n : g->nodes()) {
    if (n.element == "TITLE" && n.id != "TITLE") ++copies;
  }
  EXPECT_EQ(copies, 7);
  // PERSONA (leaf, 2 parents) is duplicated too.
  EXPECT_NE(g->FindId("PERSONA#1"), -1);
  EXPECT_NE(g->FindId("PERSONA#2"), -1);
  // LINE is a non-leaf and keeps one node.
  int line_nodes = 0;
  for (const GraphNode& n : g->nodes()) {
    if (n.element == "LINE") ++line_nodes;
  }
  EXPECT_EQ(line_nodes, 1);
}

TEST(DtdGraphTest, ToStringMentionsEdges) {
  auto g = BuildGraph("<!ELEMENT a (b*)> <!ELEMENT b (#PCDATA)>", false);
  ASSERT_TRUE(g.ok());
  EXPECT_NE(g->ToString().find("a -> b*"), std::string::npos);
}

}  // namespace
}  // namespace xorator::dtdgraph
