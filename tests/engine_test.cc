#include <gtest/gtest.h>

#include <set>

#include "ordb/database.h"
#include "xadt/functions.h"

namespace xorator::ordb {
namespace {

std::unique_ptr<Database> OpenDb(DbOptions options = {}) {
  auto db = Database::Open(options);
  EXPECT_TRUE(db.ok()) << db.status().ToString();
  EXPECT_TRUE(xadt::RegisterXadtFunctions(db.value()->functions()).ok());
  return std::move(*db);
}

class EngineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = OpenDb();
    ASSERT_TRUE(db_->Execute("CREATE TABLE emp (id INTEGER, name VARCHAR, "
                             "dept INTEGER, salary INTEGER)")
                    .ok());
    ASSERT_TRUE(db_->Execute("CREATE TABLE dept (id INTEGER, dname VARCHAR)")
                    .ok());
    ASSERT_TRUE(db_->Execute("INSERT INTO emp VALUES "
                             "(1, 'ann', 10, 100), (2, 'bob', 10, 200), "
                             "(3, 'cat', 20, 300), (4, 'dan', 20, 150), "
                             "(5, 'eve', 30, 50)")
                    .ok());
    ASSERT_TRUE(db_->Execute("INSERT INTO dept VALUES "
                             "(10, 'eng'), (20, 'ops'), (30, 'hr')")
                    .ok());
  }

  QueryResult Q(const std::string& sql) {
    auto r = db_->Query(sql);
    EXPECT_TRUE(r.ok()) << sql << " -> " << r.status().ToString();
    return r.ok() ? *r : QueryResult{};
  }

  std::unique_ptr<Database> db_;
};

TEST_F(EngineTest, SelectWithFilter) {
  QueryResult r = Q("SELECT name FROM emp WHERE salary > 150");
  ASSERT_EQ(r.rows.size(), 2u);
  std::set<std::string> names;
  for (const Tuple& row : r.rows) names.insert(row[0].AsString());
  EXPECT_EQ(names, (std::set<std::string>{"bob", "cat"}));
}

TEST_F(EngineTest, SelectStar) {
  QueryResult r = Q("SELECT * FROM dept");
  EXPECT_EQ(r.columns.size(), 2u);
  EXPECT_EQ(r.columns[0], "dept.id");
  EXPECT_EQ(r.rows.size(), 3u);
}

TEST_F(EngineTest, LikePredicate) {
  QueryResult r = Q("SELECT name FROM emp WHERE name LIKE '%a%'");
  EXPECT_EQ(r.rows.size(), 3u);  // ann, cat, dan
}

TEST_F(EngineTest, JoinWithoutIndex) {
  QueryResult r = Q(
      "SELECT name, dname FROM emp, dept WHERE dept = dept.id "
      "AND dname = 'ops'");
  ASSERT_EQ(r.rows.size(), 2u);
  for (const Tuple& row : r.rows) EXPECT_EQ(row[1].AsString(), "ops");
}

TEST_F(EngineTest, JoinWithIndexUsesIndexScanPath) {
  ASSERT_TRUE(db_->Execute("CREATE INDEX i ON emp (dept)").ok());
  ASSERT_TRUE(db_->RunStats().ok());
  auto plan = db_->Explain(
      "SELECT name FROM dept, emp WHERE dept.id = emp.dept "
      "AND dname = 'eng'");
  ASSERT_TRUE(plan.ok());
  EXPECT_NE(plan->find("IndexNLJoin"), std::string::npos) << *plan;
  QueryResult r = Q(
      "SELECT name FROM dept, emp WHERE dept.id = emp.dept "
      "AND dname = 'eng'");
  EXPECT_EQ(r.rows.size(), 2u);
}

TEST_F(EngineTest, EqualityUsesIndexScan) {
  ASSERT_TRUE(db_->Execute("CREATE INDEX i2 ON emp (name)").ok());
  auto plan = db_->Explain("SELECT salary FROM emp WHERE name = 'cat'");
  ASSERT_TRUE(plan.ok());
  EXPECT_NE(plan->find("IndexScan"), std::string::npos) << *plan;
  QueryResult r = Q("SELECT salary FROM emp WHERE name = 'cat'");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0].AsInt(), 300);
}

TEST_F(EngineTest, SortMergeJoinWhenHashDisabled) {
  db_->mutable_options()->planner.enable_hash_join = false;
  db_->mutable_options()->planner.enable_index_join = false;
  auto plan = db_->Explain(
      "SELECT name, dname FROM emp, dept WHERE dept = dept.id");
  ASSERT_TRUE(plan.ok());
  EXPECT_NE(plan->find("SortMergeJoin"), std::string::npos) << *plan;
  QueryResult r = Q("SELECT name, dname FROM emp, dept WHERE dept = dept.id");
  EXPECT_EQ(r.rows.size(), 5u);
}

TEST_F(EngineTest, HashJoinWhenEnabled) {
  db_->mutable_options()->planner.enable_index_join = false;
  auto plan = db_->Explain(
      "SELECT name, dname FROM emp, dept WHERE dept = dept.id");
  ASSERT_TRUE(plan.ok());
  EXPECT_NE(plan->find("HashJoin"), std::string::npos) << *plan;
}

TEST_F(EngineTest, TinySortHeapForcesSortMerge) {
  db_->mutable_options()->planner.enable_index_join = false;
  db_->mutable_options()->planner.sort_heap_bytes = 1;
  ASSERT_TRUE(db_->RunStats().ok());
  auto plan = db_->Explain(
      "SELECT name, dname FROM emp, dept WHERE dept = dept.id");
  ASSERT_TRUE(plan.ok());
  EXPECT_NE(plan->find("SortMergeJoin"), std::string::npos) << *plan;
}

TEST_F(EngineTest, CrossProductNestedLoop) {
  QueryResult r = Q("SELECT name, dname FROM emp, dept");
  EXPECT_EQ(r.rows.size(), 15u);
}

TEST_F(EngineTest, ThreeWayJoin) {
  ASSERT_TRUE(
      db_->Execute("CREATE TABLE loc (dept_id INTEGER, city VARCHAR)").ok());
  ASSERT_TRUE(db_->Execute("INSERT INTO loc VALUES (10, 'nyc'), (20, 'sfo'), "
                           "(30, 'chi')")
                  .ok());
  QueryResult r = Q(
      "SELECT name, dname, city FROM emp, dept, loc "
      "WHERE emp.dept = dept.id AND dept.id = loc.dept_id "
      "AND city = 'sfo'");
  ASSERT_EQ(r.rows.size(), 2u);
  for (const Tuple& row : r.rows) EXPECT_EQ(row[2].AsString(), "sfo");
}

TEST_F(EngineTest, Distinct) {
  QueryResult r = Q("SELECT DISTINCT dept FROM emp");
  EXPECT_EQ(r.rows.size(), 3u);
}

TEST_F(EngineTest, OrderBy) {
  QueryResult r = Q("SELECT name, salary FROM emp ORDER BY salary DESC");
  ASSERT_EQ(r.rows.size(), 5u);
  EXPECT_EQ(r.rows[0][0].AsString(), "cat");
  EXPECT_EQ(r.rows[4][0].AsString(), "eve");
}

TEST_F(EngineTest, OrderByAlias) {
  QueryResult r = Q("SELECT name AS n FROM emp ORDER BY n");
  ASSERT_EQ(r.rows.size(), 5u);
  EXPECT_EQ(r.rows[0][0].AsString(), "ann");
}

TEST_F(EngineTest, Limit) {
  QueryResult r = Q("SELECT name FROM emp ORDER BY name LIMIT 2");
  ASSERT_EQ(r.rows.size(), 2u);
}

TEST_F(EngineTest, GroupByCount) {
  QueryResult r =
      Q("SELECT dept, COUNT(*) AS n FROM emp GROUP BY dept ORDER BY dept");
  ASSERT_EQ(r.rows.size(), 3u);
  EXPECT_EQ(r.rows[0][0].AsInt(), 10);
  EXPECT_EQ(r.rows[0][1].AsInt(), 2);
  EXPECT_EQ(r.rows[2][1].AsInt(), 1);
}

TEST_F(EngineTest, GlobalAggregates) {
  QueryResult r = Q(
      "SELECT COUNT(*) AS n, SUM(salary) AS s, MIN(salary) AS lo, "
      "MAX(salary) AS hi FROM emp");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0].AsInt(), 5);
  EXPECT_EQ(r.rows[0][1].AsInt(), 800);
  EXPECT_EQ(r.rows[0][2].AsInt(), 50);
  EXPECT_EQ(r.rows[0][3].AsInt(), 300);
}

TEST_F(EngineTest, AggregateOverEmptyInput) {
  QueryResult r = Q("SELECT COUNT(*) AS n FROM emp WHERE salary > 10000");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0].AsInt(), 0);
}

TEST_F(EngineTest, NonGroupedColumnRejected) {
  auto r = db_->Query("SELECT name, COUNT(*) FROM emp GROUP BY dept");
  EXPECT_FALSE(r.ok());
}

TEST_F(EngineTest, BuiltinFunctions) {
  QueryResult r = Q("SELECT length(name), substr(name, 1, 2), upper(name) "
                    "FROM emp WHERE id = 1");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0].AsInt(), 3);
  EXPECT_EQ(r.rows[0][1].AsString(), "an");
  EXPECT_EQ(r.rows[0][2].AsString(), "ANN");
}

TEST_F(EngineTest, UdfTwinsMatchBuiltinsButCountCalls) {
  QueryResult builtin = Q("SELECT length(name) FROM emp");
  EXPECT_EQ(builtin.udf_stats.scalar_calls, 0u);
  QueryResult udf = Q("SELECT udf_length(name) FROM emp");
  EXPECT_EQ(udf.udf_stats.scalar_calls, 5u);
  EXPECT_GT(udf.udf_stats.marshaled_bytes, 0u);
  ASSERT_EQ(builtin.rows.size(), udf.rows.size());
  for (size_t i = 0; i < builtin.rows.size(); ++i) {
    EXPECT_EQ(builtin.rows[i][0].AsInt(), udf.rows[i][0].AsInt());
  }
}

TEST_F(EngineTest, XadtColumnsAndMethods) {
  ASSERT_TRUE(db_->Execute("CREATE TABLE speakers (id INTEGER, speaker XADT)")
                  .ok());
  // Figure 9 of the paper: two tuples, one holding two speaker fragments.
  ASSERT_TRUE(db_->Execute("INSERT INTO speakers VALUES "
                           "(1, '<speaker>s1</speaker><speaker>s2</speaker>'),"
                           "(2, '<speaker>s1</speaker>')")
                  .ok());
  QueryResult before = Q("SELECT speaker FROM speakers");
  EXPECT_EQ(before.rows.size(), 2u);
  QueryResult after = Q(
      "SELECT DISTINCT unnestedS.out AS SPEAKER FROM speakers, "
      "table(unnest(speaker, 'speaker')) unnestedS");
  ASSERT_EQ(after.rows.size(), 2u);
  std::set<std::string> values;
  for (const Tuple& row : after.rows) values.insert(row[0].AsString());
  EXPECT_EQ(values, (std::set<std::string>{"s1", "s2"}));
  // findKeyInElm filters tuples.
  QueryResult found = Q(
      "SELECT id FROM speakers WHERE "
      "findKeyInElm(speaker, 'speaker', 's2') = 1");
  ASSERT_EQ(found.rows.size(), 1u);
  EXPECT_EQ(found.rows[0][0].AsInt(), 1);
}

TEST_F(EngineTest, LateralTableFunctionFirstInFrom) {
  ASSERT_TRUE(db_->Execute("CREATE TABLE frag (x XADT)").ok());
  ASSERT_TRUE(
      db_->Execute("INSERT INTO frag VALUES ('<a>1</a><a>2</a>')").ok());
  QueryResult r = Q("SELECT u.out FROM frag, table(unnest(x, 'a')) u");
  EXPECT_EQ(r.rows.size(), 2u);
}

TEST_F(EngineTest, ExplainShowsPlan) {
  QueryResult r = Q("EXPLAIN SELECT name FROM emp WHERE salary > 150");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_NE(r.rows[0][0].AsString().find("SeqScan"), std::string::npos);
  EXPECT_NE(r.rows[0][0].AsString().find("Filter"), std::string::npos);
}

TEST_F(EngineTest, ErrorsSurfaceCleanly) {
  EXPECT_FALSE(db_->Query("SELECT nosuch FROM emp").ok());
  EXPECT_FALSE(db_->Query("SELECT name FROM nosuch").ok());
  EXPECT_FALSE(db_->Query("SELECT nosuchfn(name) FROM emp").ok());
  EXPECT_FALSE(db_->Query("INSERT INTO emp VALUES (1)").ok());
  EXPECT_FALSE(db_->Execute("CREATE TABLE emp (id INTEGER)").ok());
  EXPECT_FALSE(db_->Query("SELECT id FROM emp, dept WHERE id = 1").ok())
      << "ambiguous column";
}

TEST_F(EngineTest, AdviseIndexesCreatesJoinIndexes) {
  ASSERT_TRUE(db_
                  ->AdviseIndexes({"SELECT name FROM emp, dept "
                                   "WHERE emp.dept = dept.id "
                                   "AND dname = 'eng'"})
                  .ok());
  const TableInfo* emp = db_->catalog()->FindTable("emp");
  const TableInfo* dept = db_->catalog()->FindTable("dept");
  EXPECT_NE(emp->FindIndex("dept"), nullptr);
  EXPECT_NE(dept->FindIndex("id"), nullptr);
  EXPECT_NE(dept->FindIndex("dname"), nullptr);
  EXPECT_GT(db_->IndexBytes(), 0u);
}

TEST_F(EngineTest, RunStatsCollectsNdv) {
  ASSERT_TRUE(db_->RunStats().ok());
  const TableInfo* emp = db_->catalog()->FindTable("emp");
  EXPECT_TRUE(emp->stats.collected);
  EXPECT_EQ(emp->stats.row_count, 5u);
  int dept_col = emp->schema.ColumnIndex("dept");
  EXPECT_DOUBLE_EQ(emp->stats.columns[dept_col].ndv, 3.0);
}

TEST_F(EngineTest, DataBytesGrowWithInserts) {
  uint64_t before = db_->DataBytes();
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(db_->Execute("INSERT INTO emp VALUES (9, 'pad pad pad pad "
                             "pad pad pad pad pad pad', 1, 1)")
                    .ok());
  }
  EXPECT_GE(db_->DataBytes(), before);
  EXPECT_GT(db_->DataBytes(), 0u);
}

TEST(DatabaseFileTest, FileBackedDatabaseWorks) {
  std::string path = ::testing::TempDir() + "/xorator_engine.db";
  std::remove(path.c_str());
  DbOptions options;
  options.path = path;
  options.buffer_pool_pages = 16;
  auto db = OpenDb(options);
  ASSERT_TRUE(db->Execute("CREATE TABLE t (a INTEGER, b VARCHAR)").ok());
  for (int i = 0; i < 500; ++i) {
    ASSERT_TRUE(db->Execute("INSERT INTO t VALUES (" + std::to_string(i) +
                            ", 'value-" + std::to_string(i) + "')")
                    .ok());
  }
  auto r = db->Query("SELECT COUNT(*) AS n FROM t WHERE a >= 250");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->rows[0][0].AsInt(), 250);
  std::remove(path.c_str());
}

TEST(ValueTest, CompareAndHash) {
  EXPECT_EQ(Value::Int(3).Compare(Value::Int(3)), 0);
  EXPECT_LT(Value::Int(2).Compare(Value::Int(3)), 0);
  EXPECT_GT(Value::Varchar("b").Compare(Value::Varchar("a")), 0);
  EXPECT_EQ(Value::Int(1).Compare(Value::Double(1.0)), 0);
  EXPECT_LT(Value::Null().Compare(Value::Int(0)), 0);
  EXPECT_EQ(Value::Int(1).Hash(), Value::Double(1.0).Hash());
  EXPECT_EQ(Value::Varchar("x").Hash(), Value::Varchar("x").Hash());
}

TEST(TupleCodecTest, RoundTripAllTypes) {
  TableSchema schema;
  schema.columns = {{"i", TypeId::kInteger},
                    {"s", TypeId::kVarchar},
                    {"x", TypeId::kXadt},
                    {"d", TypeId::kDouble},
                    {"b", TypeId::kBoolean},
                    {"n", TypeId::kVarchar}};
  Tuple tuple = {Value::Int(-42),          Value::Varchar("hello"),
                 Value::Xadt("R<a/>"),     Value::Double(2.5),
                 Value::Bool(true),        Value::Null()};
  std::string bytes;
  EncodeTuple(schema, tuple, &bytes);
  auto decoded = DecodeTuple(schema, bytes);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  ASSERT_EQ(decoded->size(), 6u);
  EXPECT_EQ((*decoded)[0].AsInt(), -42);
  EXPECT_EQ((*decoded)[1].AsString(), "hello");
  EXPECT_EQ((*decoded)[2].type(), TypeId::kXadt);
  EXPECT_EQ((*decoded)[2].AsString(), "R<a/>");
  EXPECT_DOUBLE_EQ((*decoded)[3].AsDouble(), 2.5);
  EXPECT_TRUE((*decoded)[4].AsBool());
  EXPECT_TRUE((*decoded)[5].is_null());
}

TEST(TupleCodecTest, TruncatedBytesFail) {
  TableSchema schema;
  schema.columns = {{"s", TypeId::kVarchar}};
  Tuple tuple = {Value::Varchar("long enough string")};
  std::string bytes;
  EncodeTuple(schema, tuple, &bytes);
  EXPECT_FALSE(DecodeTuple(schema, bytes.substr(0, 4)).ok());
}

}  // namespace
}  // namespace xorator::ordb
