#include <gtest/gtest.h>

#include <set>

#include "ordb/database.h"
#include "ordb/executor.h"

namespace xorator::ordb {
namespace {

/// Operator-level tests: each physical operator exercised directly against
/// a materialized input, independent of the SQL front end.

/// Feeds a fixed row set (for composing operator trees in tests).
class ValuesOp : public Operator {
 public:
  ValuesOp(std::vector<ColumnMeta> columns, std::vector<Tuple> rows)
      : rows_(std::move(rows)) {
    columns_ = std::move(columns);
  }

  Status Open(ExecContext*) override {
    pos_ = 0;
    return Status::OK();
  }
  Result<bool> Next(Tuple* out) override {
    if (pos_ >= rows_.size()) return false;
    *out = rows_[pos_++];
    return true;
  }
  std::string Label() const override { return "Values"; }

 private:
  std::vector<Tuple> rows_;
  size_t pos_ = 0;
};

OperatorPtr MakeValues(std::vector<Tuple> rows, size_t width) {
  std::vector<ColumnMeta> cols;
  for (size_t i = 0; i < width; ++i) {
    cols.push_back({"c" + std::to_string(i), TypeId::kInteger});
  }
  return std::make_unique<ValuesOp>(std::move(cols), std::move(rows));
}

std::vector<Tuple> Drain(Operator* op, ExecContext* ctx) {
  EXPECT_TRUE(op->Open(ctx).ok());
  std::vector<Tuple> out;
  Tuple row;
  while (true) {
    auto ok = op->Next(&row);
    EXPECT_TRUE(ok.ok()) << ok.status().ToString();
    if (!ok.ok() || !*ok) break;
    out.push_back(row);
  }
  op->Close();
  return out;
}

ExprPtr Col(size_t i) {
  return std::make_unique<ColumnRefExpr>(i, "c" + std::to_string(i),
                                         TypeId::kInteger);
}

ExprPtr IntLit(int64_t v) {
  return std::make_unique<LiteralExpr>(Value::Int(v));
}

TEST(FilterOpTest, KeepsMatchingRows) {
  ExecContext ctx;
  auto values = MakeValues({{Value::Int(1)}, {Value::Int(2)}, {Value::Int(3)}},
                           1);
  auto pred = std::make_unique<CompareExpr>(CompareOp::kGt, Col(0), IntLit(1));
  FilterOp filter(std::move(values), std::move(pred));
  auto rows = Drain(&filter, &ctx);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0][0].AsInt(), 2);
}

TEST(ProjectOpTest, EvaluatesExpressions) {
  ExecContext ctx;
  auto values = MakeValues({{Value::Int(5), Value::Int(7)}}, 2);
  std::vector<ExprPtr> exprs;
  exprs.push_back(Col(1));
  exprs.push_back(Col(0));
  ProjectOp project(std::move(values), std::move(exprs), {"b", "a"});
  auto rows = Drain(&project, &ctx);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][0].AsInt(), 7);
  EXPECT_EQ(rows[0][1].AsInt(), 5);
  EXPECT_EQ(project.columns()[0].name, "b");
}

TEST(HashJoinOpTest, JoinsOnKeysWithDuplicates) {
  ExecContext ctx;
  auto left = MakeValues(
      {{Value::Int(1)}, {Value::Int(2)}, {Value::Int(2)}}, 1);
  auto right = MakeValues(
      {{Value::Int(2), Value::Int(20)}, {Value::Int(3), Value::Int(30)},
       {Value::Int(2), Value::Int(21)}},
      2);
  std::vector<ExprPtr> lk;
  lk.push_back(Col(0));
  std::vector<ExprPtr> rk;
  rk.push_back(Col(0));
  HashJoinOp join(std::move(left), std::move(right), std::move(lk),
                  std::move(rk), nullptr);
  auto rows = Drain(&join, &ctx);
  // 2 left dups x 2 right dups on key 2 = 4 rows.
  EXPECT_EQ(rows.size(), 4u);
  for (const Tuple& row : rows) {
    EXPECT_EQ(row[0].AsInt(), row[1].AsInt());
  }
}

TEST(SortMergeJoinOpTest, MatchesHashJoinSemantics) {
  auto make_inputs = [] {
    auto left = MakeValues({{Value::Int(3)},
                            {Value::Int(1)},
                            {Value::Int(2)},
                            {Value::Int(2)}},
                           1);
    auto right = MakeValues({{Value::Int(2), Value::Int(20)},
                             {Value::Int(1), Value::Int(10)},
                             {Value::Int(2), Value::Int(21)}},
                            2);
    return std::make_pair(std::move(left), std::move(right));
  };
  auto run = [&](bool hash) {
    ExecContext ctx;
    auto [left, right] = make_inputs();
    std::vector<ExprPtr> lk;
    lk.push_back(Col(0));
    std::vector<ExprPtr> rk;
    rk.push_back(Col(0));
    std::multiset<std::pair<int64_t, int64_t>> out;
    if (hash) {
      HashJoinOp join(std::move(left), std::move(right), std::move(lk),
                      std::move(rk), nullptr);
      for (const Tuple& row : Drain(&join, &ctx)) {
        out.emplace(row[0].AsInt(), row[2].AsInt());
      }
    } else {
      SortMergeJoinOp join(std::move(left), std::move(right), std::move(lk),
                           std::move(rk), nullptr);
      for (const Tuple& row : Drain(&join, &ctx)) {
        out.emplace(row[0].AsInt(), row[2].AsInt());
      }
    }
    return out;
  };
  auto hash_rows = run(true);
  auto merge_rows = run(false);
  EXPECT_EQ(hash_rows.size(), 5u);  // 1x1 + 2x2
  EXPECT_EQ(hash_rows, merge_rows);
}

TEST(NestedLoopJoinOpTest, CrossProductAndPredicate) {
  ExecContext ctx;
  auto left = MakeValues({{Value::Int(1)}, {Value::Int(2)}}, 1);
  auto right = MakeValues({{Value::Int(10)}, {Value::Int(20)}}, 1);
  NestedLoopJoinOp cross(std::move(left), std::move(right), nullptr);
  EXPECT_EQ(Drain(&cross, &ctx).size(), 4u);

  auto left2 = MakeValues({{Value::Int(1)}, {Value::Int(2)}}, 1);
  auto right2 = MakeValues({{Value::Int(1)}, {Value::Int(5)}}, 1);
  // Predicate over the combined layout: c0 (left) < c1 (right index 0 -> 1).
  auto pred = std::make_unique<CompareExpr>(
      CompareOp::kLt, Col(0),
      std::make_unique<ColumnRefExpr>(1, "r.c0", TypeId::kInteger));
  NestedLoopJoinOp join(std::move(left2), std::move(right2), std::move(pred));
  EXPECT_EQ(Drain(&join, &ctx).size(), 2u);  // (1,5) and (2,5)
}

TEST(SortOpTest, MultiKeyMixedDirections) {
  ExecContext ctx;
  auto values = MakeValues({{Value::Int(1), Value::Int(9)},
                            {Value::Int(2), Value::Int(5)},
                            {Value::Int(1), Value::Int(3)}},
                           2);
  std::vector<ExprPtr> keys;
  keys.push_back(Col(0));
  keys.push_back(Col(1));
  SortOp sort(std::move(values), std::move(keys), {true, false});
  auto rows = Drain(&sort, &ctx);
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows[0][1].AsInt(), 9);  // (1,9) before (1,3) since c1 DESC
  EXPECT_EQ(rows[1][1].AsInt(), 3);
  EXPECT_EQ(rows[2][0].AsInt(), 2);
}

TEST(DistinctOpTest, RemovesDuplicateRows) {
  ExecContext ctx;
  auto values = MakeValues(
      {{Value::Int(1)}, {Value::Int(1)}, {Value::Null()}, {Value::Null()}},
      1);
  DistinctOp distinct(std::move(values));
  EXPECT_EQ(Drain(&distinct, &ctx).size(), 2u);
}

TEST(AggregateOpTest, GroupsAndAggregates) {
  ExecContext ctx;
  auto values = MakeValues({{Value::Int(1), Value::Int(10)},
                            {Value::Int(1), Value::Int(20)},
                            {Value::Int(2), Value::Null()},
                            {Value::Int(2), Value::Int(5)}},
                           2);
  std::vector<ExprPtr> group;
  group.push_back(Col(0));
  std::vector<AggregateSpec> aggs;
  AggregateSpec count_star;
  count_star.kind = AggKind::kCountStar;
  count_star.name = "n";
  aggs.push_back(std::move(count_star));
  AggregateSpec count_col;
  count_col.kind = AggKind::kCount;
  count_col.arg = Col(1);
  count_col.name = "c";
  aggs.push_back(std::move(count_col));
  AggregateSpec sum;
  sum.kind = AggKind::kSum;
  sum.arg = Col(1);
  sum.name = "s";
  aggs.push_back(std::move(sum));
  AggregateSpec min;
  min.kind = AggKind::kMin;
  min.arg = Col(1);
  min.name = "lo";
  aggs.push_back(std::move(min));
  AggregateOp agg(std::move(values), std::move(group), {"g"},
                  std::move(aggs));
  auto rows = Drain(&agg, &ctx);
  ASSERT_EQ(rows.size(), 2u);
  // Group 1: n=2, c=2, s=30, lo=10.
  EXPECT_EQ(rows[0][0].AsInt(), 1);
  EXPECT_EQ(rows[0][1].AsInt(), 2);
  EXPECT_EQ(rows[0][2].AsInt(), 2);
  EXPECT_EQ(rows[0][3].AsInt(), 30);
  EXPECT_EQ(rows[0][4].AsInt(), 10);
  // Group 2: COUNT skips the null, SUM/MIN over {5}.
  EXPECT_EQ(rows[1][1].AsInt(), 2);
  EXPECT_EQ(rows[1][2].AsInt(), 1);
  EXPECT_EQ(rows[1][3].AsInt(), 5);
}

TEST(OperatorTest, RescanAfterCloseOpen) {
  // Operators are restartable: Open after Close replays the stream.
  ExecContext ctx;
  auto values = MakeValues({{Value::Int(1)}, {Value::Int(2)}}, 1);
  DistinctOp distinct(std::move(values));
  EXPECT_EQ(Drain(&distinct, &ctx).size(), 2u);
  EXPECT_EQ(Drain(&distinct, &ctx).size(), 2u);
}

TEST(ExplainTest, TreeRendering) {
  auto values = MakeValues({{Value::Int(1)}}, 1);
  auto pred = std::make_unique<CompareExpr>(CompareOp::kEq, Col(0), IntLit(1));
  FilterOp filter(std::move(values), std::move(pred));
  std::string text = filter.Explain();
  EXPECT_NE(text.find("Filter(c0 = 1)"), std::string::npos);
  EXPECT_NE(text.find("  Values"), std::string::npos);
}

}  // namespace
}  // namespace xorator::ordb
