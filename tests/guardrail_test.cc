#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <thread>

#include "common/timer.h"
#include "ordb/database.h"
#include "ordb/query_guard.h"
#include "xadt/functions.h"

namespace xorator {
namespace {

using ordb::Database;
using ordb::QueryGuard;
using ordb::QueryOptions;
using ordb::ScopedGuardBind;
using ordb::TrackedArena;
using ordb::Tuple;
using ordb::Value;

/// Query guardrails (DESIGN.md section 12): deadlines, cooperative
/// cancellation and memory budgets must stop a statement with the right
/// error code, release every pin, and leave the database usable.

// ---------------------------------------------------------------------------
// QueryGuard unit tests.

TEST(QueryGuardTest, UnlimitedGuardAlwaysPasses) {
  QueryGuard guard(0, 0);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_TRUE(guard.CheckPoint().ok());
  }
  EXPECT_EQ(guard.Stats().checkpoints, 1000u);
  EXPECT_EQ(guard.Stats().stop_code, StatusCode::kOk);
}

TEST(QueryGuardTest, CancelLatchesAcrossCheckpoints) {
  QueryGuard guard(0, 0);
  ASSERT_TRUE(guard.CheckPoint().ok());
  EXPECT_FALSE(guard.cancel_requested());
  guard.Cancel();
  EXPECT_TRUE(guard.cancel_requested());
  for (int i = 0; i < 3; ++i) {
    Status s = guard.CheckPoint();
    ASSERT_FALSE(s.ok());
    EXPECT_EQ(s.code(), StatusCode::kCancelled);
  }
  EXPECT_EQ(guard.Stats().stop_code, StatusCode::kCancelled);
}

TEST(QueryGuardTest, DeadlineTrips) {
  QueryGuard guard(5, 0);
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  // The clock is strided (checked once per kClockStride calls), so poll
  // more than one stride's worth before expecting the trip.
  Status last = Status::OK();
  for (int i = 0; i < 100 && last.ok(); ++i) last = guard.CheckPoint();
  ASSERT_FALSE(last.ok());
  EXPECT_EQ(last.code(), StatusCode::kDeadlineExceeded);
  // Latched: later checkpoints keep reporting the deadline.
  EXPECT_EQ(guard.CheckPoint().code(), StatusCode::kDeadlineExceeded);
}

TEST(QueryGuardTest, BudgetTripsOnChargeAndLatches) {
  QueryGuard guard(0, 100);
  ASSERT_TRUE(guard.Charge(60).ok());
  Status s = guard.Charge(60);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kResourceExhausted);
  // The trip is latched even after the memory is returned: the statement
  // is already unwinding and must not resurrect itself.
  guard.Uncharge(120);
  EXPECT_EQ(guard.CheckPoint().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(guard.Stats().peak_tracked_bytes, 120u);
}

TEST(QueryGuardTest, FirstTripWins) {
  QueryGuard guard(0, 100);
  guard.Cancel();
  ASSERT_EQ(guard.CheckPoint().code(), StatusCode::kCancelled);
  // An over-budget charge after the cancel keeps reporting the cancel.
  EXPECT_EQ(guard.Charge(1000).code(), StatusCode::kCancelled);
  EXPECT_EQ(guard.Stats().stop_code, StatusCode::kCancelled);
}

TEST(QueryGuardTest, StatsLineAndStopCodes) {
  QueryGuard guard(0, 0);
  ASSERT_TRUE(guard.CheckPoint().ok());
  std::string line = guard.StatsLine();
  EXPECT_NE(line.find("guard:"), std::string::npos) << line;
  EXPECT_NE(line.find("checkpoints="), std::string::npos) << line;

  EXPECT_TRUE(QueryGuard::IsStopCode(StatusCode::kCancelled));
  EXPECT_TRUE(QueryGuard::IsStopCode(StatusCode::kDeadlineExceeded));
  EXPECT_TRUE(QueryGuard::IsStopCode(StatusCode::kResourceExhausted));
  EXPECT_FALSE(QueryGuard::IsStopCode(StatusCode::kOk));
  EXPECT_FALSE(QueryGuard::IsStopCode(StatusCode::kParseError));
}

TEST(TrackedArenaTest, ReleasesOnDestruction) {
  QueryGuard guard(0, 0);
  {
    TrackedArena arena(&guard);
    ASSERT_TRUE(arena.Charge(500).ok());
    EXPECT_EQ(arena.charged(), 500u);
    EXPECT_EQ(guard.Stats().tracked_bytes, 500u);
  }
  EXPECT_EQ(guard.Stats().tracked_bytes, 0u);
  EXPECT_EQ(guard.Stats().peak_tracked_bytes, 500u);
}

TEST(TrackedArenaTest, RebindReleasesTheOldCharge) {
  QueryGuard a(0, 0);
  QueryGuard b(0, 0);
  TrackedArena arena(&a);
  ASSERT_TRUE(arena.Charge(100).ok());
  arena.Rebind(&b);
  EXPECT_EQ(a.Stats().tracked_bytes, 0u);
  ASSERT_TRUE(arena.Charge(50).ok());
  EXPECT_EQ(b.Stats().tracked_bytes, 50u);
}

TEST(TrackedArenaTest, NullGuardIsANoop) {
  TrackedArena arena;
  ASSERT_TRUE(arena.Charge(1u << 30).ok());
  EXPECT_EQ(arena.charged(), 0u);
  arena.Release();
}

TEST(ScopedGuardBindTest, NestsAndRestores) {
  EXPECT_EQ(ordb::CurrentGuard(), nullptr);
  QueryGuard outer(0, 0);
  QueryGuard inner(0, 0);
  {
    ScopedGuardBind bind_outer(&outer);
    EXPECT_EQ(ordb::CurrentGuard(), &outer);
    {
      ScopedGuardBind bind_inner(&inner);
      EXPECT_EQ(ordb::CurrentGuard(), &inner);
    }
    EXPECT_EQ(ordb::CurrentGuard(), &outer);
  }
  EXPECT_EQ(ordb::CurrentGuard(), nullptr);
}

// ---------------------------------------------------------------------------
// SQL-level tests: guardrails threaded through the whole engine.

std::unique_ptr<Database> OpenDb() {
  auto db = Database::Open({});
  EXPECT_TRUE(db.ok());
  EXPECT_TRUE(xadt::RegisterXadtFunctions(db.value()->functions()).ok());
  return std::move(*db);
}

/// Seeds `rows` integer rows into table t(a INTEGER, b VARCHAR).
void SeedIntTable(Database* db, int rows) {
  ASSERT_TRUE(db->Execute("CREATE TABLE t (a INTEGER, b VARCHAR)").ok());
  std::vector<Tuple> batch;
  for (int i = 0; i < rows; ++i) {
    batch.push_back({Value::Int(i), Value::Varchar("row" + std::to_string(i))});
  }
  ASSERT_TRUE(db->BulkInsert("t", batch).ok());
}

/// After a guarded abort the engine must be quiescent (no leaked pins) and
/// fully usable.
void ExpectUsable(Database* db) {
  EXPECT_EQ(db->buffer_pool()->PinnedFrameCount(), 0u);
  auto again = db->Query("SELECT COUNT(*) AS n FROM t");
  ASSERT_TRUE(again.ok()) << again.status().ToString();
  EXPECT_EQ(again->rows.size(), 1u);
}

TEST(GuardrailSqlTest, DeadlineExpiryMidScanReturnsPromptly) {
  auto db = OpenDb();
  SeedIntTable(db.get(), 300);
  // A 300^3 cross product (no equality predicate, so the planner cannot
  // pick a hash join) grinds through ~27M nested-loop rows — far longer
  // than 50 ms unguarded; the deadline must cut it short.
  QueryOptions options;
  options.deadline_millis = 50;
  Timer timer;
  auto r = db->Query("SELECT COUNT(*) AS n FROM t t1, t t2, t t3", options);
  double elapsed = timer.ElapsedMillis();
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kDeadlineExceeded)
      << r.status().ToString();
  // "Promptly": well before the unguarded runtime. Generous bound to stay
  // robust on loaded CI machines.
  EXPECT_LT(elapsed, 5000.0);
  ExpectUsable(db.get());
}

TEST(GuardrailSqlTest, MemoryBudgetTripsOnJoinMaterialization) {
  auto db = OpenDb();
  SeedIntTable(db.get(), 2000);
  // The nested-loop join materializes its right side into a tracked arena;
  // a 16 KB budget cannot hold 2000 rows.
  QueryOptions options;
  options.max_memory_bytes = 16 * 1024;
  auto r = db->Query("SELECT COUNT(*) AS n FROM t t1, t t2 WHERE t1.a = t2.a",
                     options);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted)
      << r.status().ToString();
  ExpectUsable(db.get());
}

TEST(GuardrailSqlTest, MemoryBudgetTripsOnLargeUnnest) {
  auto db = OpenDb();
  ASSERT_TRUE(db->Execute("CREATE TABLE t (id INTEGER, x XADT)").ok());
  std::string doc = "<r>";
  for (int i = 0; i < 5000; ++i) {
    doc += "<a>fragment number " + std::to_string(i) + "</a>";
  }
  doc += "</r>";
  ASSERT_TRUE(db->Execute("INSERT INTO t VALUES (1, '" + doc + "')").ok());

  // Unguarded, the unnest expands every <a> child.
  auto full = db->Query("SELECT u.out FROM t, table(unnest(x, 'a')) u");
  ASSERT_TRUE(full.ok()) << full.status().ToString();
  ASSERT_EQ(full->rows.size(), 5000u);

  // With a budget far below the expansion size, the XADT layer's charges
  // trip the guard mid-expansion.
  QueryOptions options;
  options.max_memory_bytes = 8 * 1024;
  auto r = db->Query("SELECT u.out FROM t, table(unnest(x, 'a')) u", options);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted)
      << r.status().ToString();
  EXPECT_EQ(db->buffer_pool()->PinnedFrameCount(), 0u);
  // The same statement with a roomy budget still works.
  options.max_memory_bytes = 64u << 20;
  auto ok = db->Query("SELECT u.out FROM t, table(unnest(x, 'a')) u", options);
  ASSERT_TRUE(ok.ok()) << ok.status().ToString();
  EXPECT_EQ(ok->rows.size(), 5000u);
}

TEST(GuardrailSqlTest, CancelUnknownIdIsNotFound) {
  auto db = OpenDb();
  Status s = db->Cancel(12345);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
}

TEST(GuardrailSqlTest, GuardStatsReportedInExplain) {
  auto db = OpenDb();
  SeedIntTable(db.get(), 10);
  QueryOptions options;
  options.deadline_millis = 10000;
  auto r = db->Query("SELECT a FROM t", options);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_NE(r->plan.find("guard: checkpoints="), std::string::npos) << r->plan;
  EXPECT_NE(r->plan.find("stopped=OK"), std::string::npos) << r->plan;

  // EXPLAIN carries the stats line in its plan row as well.
  auto ex = db->Query("EXPLAIN SELECT a FROM t", options);
  ASSERT_TRUE(ex.ok());
  EXPECT_NE(ex->rows[0][0].AsString().find("guard:"), std::string::npos);

  // Unguarded plans stay exactly as before — no stats line.
  auto plain = db->Query("SELECT a FROM t");
  ASSERT_TRUE(plain.ok());
  EXPECT_EQ(plain->plan.find("guard:"), std::string::npos) << plain->plan;
}

TEST(GuardrailSqlTest, GuardedWriteStatementsWork) {
  auto db = OpenDb();
  SeedIntTable(db.get(), 100);
  QueryOptions options;
  options.deadline_millis = 10000;
  options.query_id = 42;
  ASSERT_TRUE(db->Execute("INSERT INTO t VALUES (100, 'new')", options).ok());
  ASSERT_TRUE(db->Execute("DELETE FROM t WHERE a = 100", options).ok());
  // The registration is gone once the statement finished.
  EXPECT_EQ(db->Cancel(42).code(), StatusCode::kNotFound);
}

TEST(GuardrailSqlTest, DeleteScanHonorsTheBudget) {
  auto db = OpenDb();
  SeedIntTable(db.get(), 2000);
  QueryOptions options;
  options.max_memory_bytes = 1024;
  // The scan phase charges each doomed row; an absurdly small budget trips
  // before any row is deleted, so the table is untouched.
  auto r = db->Query("DELETE FROM t", options);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted);
  auto count = db->Query("SELECT COUNT(*) AS n FROM t");
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(count->rows[0][0].AsInt(), 2000);
}

TEST(GuardrailSqlTest, ZeroOptionsRunUnguarded) {
  auto db = OpenDb();
  SeedIntTable(db.get(), 5);
  QueryOptions options;  // all zero: guarded() == false
  EXPECT_FALSE(options.guarded());
  auto r = db->Query("SELECT a FROM t", options);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->rows.size(), 5u);
  EXPECT_EQ(r->plan.find("guard:"), std::string::npos);
}

}  // namespace
}  // namespace xorator
