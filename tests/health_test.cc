#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "ordb/database.h"
#include "ordb/health.h"
#include "ordb/page.h"

namespace xorator {
namespace {

using ordb::Database;
using ordb::DbOptions;
using ordb::EngineHealth;
using ordb::HealthSnapshot;
using ordb::HealthState;
using ordb::HealthStateName;
using ordb::kPageSize;
using ordb::QueryOptions;

/// Coverage for DESIGN.md §13: the EngineHealth state machine itself, the
/// database-level read-only latch / fail-fast gates it drives, TryRecover()
/// round-trips, and the PRAGMA health / PRAGMA scrub surface.

std::string NewDbPath(const std::string& name) {
  std::string path = ::testing::TempDir() + "/" + name;
  std::remove(path.c_str());
  std::remove((path + ".wal").c_str());
  return path;
}

void RemoveDb(const std::string& path) {
  std::remove(path.c_str());
  std::remove((path + ".wal").c_str());
}

/// The "value" of a PRAGMA health row, or "" when the name is absent.
std::string HealthRow(Database* db, const std::string& name) {
  auto r = db->Query("PRAGMA health");
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  if (!r.ok()) return "";
  for (const auto& row : r->rows) {
    if (row[0].AsString() == name) return row[1].AsString();
  }
  return "";
}

// ------------------------------------------------- the state machine itself

TEST(EngineHealthTest, StartsHealthyAndFullyUsable) {
  EngineHealth h;
  EXPECT_EQ(h.state(), HealthState::kHealthy);
  EXPECT_EQ(h.transitions(), 0u);
  EXPECT_TRUE(h.CheckWritable().ok());
  EXPECT_TRUE(h.CheckUsable().ok());
  HealthSnapshot snap = h.Snapshot();
  EXPECT_EQ(snap.state, HealthState::kHealthy);
  EXPECT_TRUE(snap.detail.empty());
}

TEST(EngineHealthTest, StateNamesAreStable) {
  // PRAGMA health and the resilience stats line render these; a rename
  // would silently break log scrapers.
  EXPECT_EQ(HealthStateName(HealthState::kHealthy), "Healthy");
  EXPECT_EQ(HealthStateName(HealthState::kDegraded), "Degraded");
  EXPECT_EQ(HealthStateName(HealthState::kReadOnly), "ReadOnly");
  EXPECT_EQ(HealthStateName(HealthState::kFailed), "Failed");
}

TEST(EngineHealthTest, EscalationsLatchMonotonically) {
  EngineHealth h;
  h.ReportDegraded("first quarantine");
  EXPECT_EQ(h.state(), HealthState::kDegraded);
  EXPECT_EQ(h.transitions(), 1u);
  EXPECT_TRUE(h.CheckWritable().ok());  // Degraded engines still write

  // Same severity again: detail refreshes, no transition is counted.
  h.ReportDegraded("second quarantine");
  EXPECT_EQ(h.transitions(), 1u);
  EXPECT_EQ(h.Snapshot().detail, "second quarantine");

  h.ReportReadOnly("WAL append failed");
  EXPECT_EQ(h.state(), HealthState::kReadOnly);
  EXPECT_EQ(h.transitions(), 2u);
  Status writable = h.CheckWritable();
  EXPECT_EQ(writable.code(), StatusCode::kUnavailable);
  EXPECT_NE(writable.message().find("ReadOnly"), std::string::npos);
  EXPECT_NE(writable.message().find("WAL append failed"), std::string::npos);
  EXPECT_NE(writable.message().find("TryRecover"), std::string::npos);
  EXPECT_TRUE(h.CheckUsable().ok());  // reads survive read-only mode

  // A lower-severity report after the latch is a no-op — the machine
  // absorbs fault storms without bouncing or losing the latched reason.
  h.ReportDegraded("late quarantine");
  EXPECT_EQ(h.state(), HealthState::kReadOnly);
  EXPECT_EQ(h.transitions(), 2u);
  EXPECT_EQ(h.Snapshot().detail, "WAL append failed");

  h.ReportFailed("storage stack detached");
  EXPECT_EQ(h.state(), HealthState::kFailed);
  EXPECT_EQ(h.transitions(), 3u);
  Status usable = h.CheckUsable();
  EXPECT_EQ(usable.code(), StatusCode::kUnavailable);
  EXPECT_NE(usable.message().find("reopen"), std::string::npos);
}

TEST(EngineHealthTest, RecoverIsTheOneUpwardEdge) {
  EngineHealth degraded;
  degraded.ReportDegraded("quarantined page");
  ASSERT_TRUE(degraded.Recover());
  EXPECT_EQ(degraded.state(), HealthState::kHealthy);
  EXPECT_EQ(degraded.transitions(), 2u);  // down and back up both count
  EXPECT_TRUE(degraded.Snapshot().detail.empty());

  EngineHealth read_only;
  read_only.ReportReadOnly("checkpoint failed");
  ASSERT_TRUE(read_only.Recover());
  EXPECT_EQ(read_only.state(), HealthState::kHealthy);
  EXPECT_TRUE(read_only.CheckWritable().ok());

  // Recovering a healthy machine is a no-op, not a transition.
  EngineHealth healthy;
  ASSERT_TRUE(healthy.Recover());
  EXPECT_EQ(healthy.transitions(), 0u);
}

#if GTEST_HAS_DEATH_TEST && !defined(NDEBUG)
// The machine's one illegal transition: Recover() out of kFailed asserts in
// debug builds (release builds return false and stay failed — covered for
// every build by the contract comment in health.h; the abort is only
// observable where assert() is live).
TEST(EngineHealthDeathTest, RecoverOnFailedEngineAborts) {
  EngineHealth h;
  h.ReportFailed("storage stack detached");
  EXPECT_DEATH(
      {
        const bool recovered = h.Recover();
        ASSERT_FALSE(recovered);  // unreachable: the assert fires first
      },
      "Recover\\(\\) called on a kFailed engine");
}
#endif  // GTEST_HAS_DEATH_TEST && !defined(NDEBUG)

// ------------------------------------------------------ the status taxonomy

TEST(StatusTaxonomyTest, RetryableAndDegradableArePartitioned) {
  // The retry/degrade policy split (status.h): transient unavailability is
  // the only retryable class; media-level failures are degradable but NOT
  // retryable (re-reading a bad checksum cannot help); caller errors are
  // neither.
  EXPECT_TRUE(Status::Unavailable("transient").IsRetryable());
  EXPECT_FALSE(Status::Unavailable("transient").IsDegradable());

  EXPECT_TRUE(Status::IOError("disk died").IsDegradable());
  EXPECT_FALSE(Status::IOError("disk died").IsRetryable());
  EXPECT_TRUE(Status::Corruption("bad checksum").IsDegradable());
  EXPECT_FALSE(Status::Corruption("bad checksum").IsRetryable());

  EXPECT_FALSE(Status::OK().IsRetryable());
  EXPECT_FALSE(Status::OK().IsDegradable());
  EXPECT_FALSE(Status::InvalidArgument("caller bug").IsRetryable());
  EXPECT_FALSE(Status::InvalidArgument("caller bug").IsDegradable());
}

// ------------------------------------------- database-level latch + recover

TEST(HealthDatabaseTest, WalDeviceFailureLatchesReadOnlyAndRecovers) {
  const std::string path = NewDbPath("xorator_health_walfail.db");
  {  // Phase A: a clean committed prefix (3 rows survive everything below).
    DbOptions options;
    options.path = path;
    auto db = Database::Open(options);
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    ASSERT_TRUE((*db)->Execute("CREATE TABLE t (a INTEGER)").ok());
    ASSERT_TRUE((*db)->Execute("INSERT INTO t VALUES (1), (2), (3)").ok());
    ASSERT_TRUE((*db)->Close().ok());
  }
  DbOptions options;
  options.path = path;
  ordb::FaultOptions fault;
  fault.wal_fail_after_appends = 0;  // the WAL "device" is dead on arrival
  options.fault = fault;
  auto db = Database::Open(options);
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  EXPECT_EQ((*db)->health()->state(), HealthState::kHealthy);

  // Mutations run (the WAL is only consulted at write-back), but the first
  // checkpoint needs the meta page's pre-image and the append fails.
  ASSERT_TRUE((*db)->Execute("INSERT INTO t VALUES (4), (5)").ok());
  Status checkpoint = (*db)->Checkpoint();
  ASSERT_FALSE(checkpoint.ok());
  EXPECT_EQ((*db)->health()->state(), HealthState::kReadOnly);
  EXPECT_GT((*db)->fault_pager()->stats().wal_failures, 0u);

  // Mutations now fail fast with the latched detail...
  Status insert = (*db)->Execute("INSERT INTO t VALUES (6)");
  ASSERT_FALSE(insert.ok());
  EXPECT_EQ(insert.code(), StatusCode::kUnavailable);
  EXPECT_NE(insert.message().find("ReadOnly"), std::string::npos);

  // ...while reads keep working and say why the engine is limping.
  auto count = (*db)->Query("SELECT COUNT(*) AS n FROM t");
  ASSERT_TRUE(count.ok()) << count.status().ToString();
  EXPECT_EQ(count->rows[0][0].AsInt(), 5);
  EXPECT_NE(count->plan.find("resilience: health=ReadOnly"),
            std::string::npos);
  EXPECT_EQ(HealthRow(db->get(), "health"), "ReadOnly");

  // Fix the "device" and re-arm without a restart. The uncheckpointed rows
  // 4 and 5 roll back with the epoch — exactly what a reopen would lose.
  (*db)->mutable_options()->fault->wal_fail_after_appends = -1;
  Status recovered = (*db)->TryRecover();
  ASSERT_TRUE(recovered.ok()) << recovered.ToString();
  EXPECT_EQ((*db)->health()->state(), HealthState::kHealthy);
  auto after = (*db)->Query("SELECT COUNT(*) AS n FROM t");
  ASSERT_TRUE(after.ok()) << after.status().ToString();
  EXPECT_EQ(after->rows[0][0].AsInt(), 3);
  // The plan text carries no resilience line again: the engine is healthy.
  EXPECT_EQ(after->plan.find("resilience:"), std::string::npos);

  // And the write path genuinely works end to end, checkpoint included.
  ASSERT_TRUE((*db)->Execute("INSERT INTO t VALUES (7)").ok());
  ASSERT_TRUE((*db)->Checkpoint().ok());
  EXPECT_EQ((*db)->buffer_pool()->PinnedFrameCount(), 0u);
  ASSERT_TRUE((*db)->Close().ok());
  RemoveDb(path);
}

TEST(HealthDatabaseTest, ReadOnlyEngineFreezesDirtyWriteBack) {
  // Once kReadOnly latches because the journal failed, no further page
  // overwrite may reach the data file: the pre-image log can no longer
  // guarantee rollback. Reads must keep working through clean frames.
  const std::string path = NewDbPath("xorator_health_freeze.db");
  DbOptions options;
  options.path = path;
  options.buffer_pool_pages = 8;  // scans below must evict
  ordb::FaultOptions fault;       // zero rates: armed later via set_options
  options.fault = fault;
  auto db = Database::Open(options);
  ASSERT_TRUE(db.ok()) << db.status().ToString();

  ASSERT_TRUE((*db)->Execute("CREATE TABLE t (a INTEGER, s VARCHAR)").ok());
  // Fat rows so the heap spans far more pages than the pool has frames —
  // the scans below must cycle every frame through eviction.
  const std::string pad(200, 'x');
  std::string values;
  for (int i = 0; i < 400; ++i) {
    if (!values.empty()) values += ", ";
    values += "(" + std::to_string(i) + ", '" + pad + std::to_string(i) + "')";
  }
  ASSERT_TRUE((*db)->Execute("INSERT INTO t VALUES " + values).ok());
  ASSERT_TRUE((*db)->Checkpoint().ok());

  // Kill the WAL "device", dirty a few frames, and fail a checkpoint on
  // the meta page's pre-image append.
  ordb::FaultOptions dead = fault;
  dead.wal_fail_after_appends =
      static_cast<int64_t>((*db)->fault_pager()->stats().wal_appends);
  (*db)->mutable_options()->fault = dead;
  (*db)->fault_pager()->set_options(dead);
  ASSERT_TRUE((*db)->Execute("INSERT INTO t VALUES (1000, 'straggler')").ok());
  ASSERT_FALSE((*db)->Checkpoint().ok());
  ASSERT_EQ((*db)->health()->state(), HealthState::kReadOnly);

  // The freeze: scans (which must evict — 400 rows through 8 frames) keep
  // succeeding, and not one page write reaches the injector while the
  // engine is read-only.
  const uint64_t writes_before = (*db)->fault_pager()->stats().writes;
  for (int round = 0; round < 3; ++round) {
    auto count = (*db)->Query("SELECT COUNT(*) AS n FROM t");
    ASSERT_TRUE(count.ok()) << count.status().ToString();
    EXPECT_EQ(count->rows[0][0].AsInt(), 401);
    EXPECT_EQ((*db)->buffer_pool()->PinnedFrameCount(), 0u);
  }
  EXPECT_EQ((*db)->fault_pager()->stats().writes, writes_before)
      << "a dirty frame was written back while the engine was read-only";

  // Recovery re-arms the stack and rolls back to the checkpoint: the
  // straggler row is gone, and mutations flow again.
  (*db)->mutable_options()->fault = fault;
  Status recovered = (*db)->TryRecover();
  ASSERT_TRUE(recovered.ok()) << recovered.ToString();
  EXPECT_EQ((*db)->health()->state(), HealthState::kHealthy);
  auto count = (*db)->Query("SELECT COUNT(*) AS n FROM t");
  ASSERT_TRUE(count.ok()) << count.status().ToString();
  EXPECT_EQ(count->rows[0][0].AsInt(), 400);
  ASSERT_TRUE((*db)->Execute("INSERT INTO t VALUES (1001, 'post')").ok());
  ASSERT_TRUE((*db)->Close().ok());
  RemoveDb(path);
}

TEST(HealthDatabaseTest, MemoryBackedTryRecoverReArmsTheMachine) {
  auto opened = Database::Open({});
  ASSERT_TRUE(opened.ok());
  Database* db = opened->get();
  db->health()->ReportDegraded("synthetic quarantine");
  EXPECT_EQ(HealthRow(db, "health"), "Degraded");
  ASSERT_TRUE(db->TryRecover().ok());
  EXPECT_EQ(db->health()->state(), HealthState::kHealthy);
  EXPECT_EQ(HealthRow(db, "health"), "Healthy");
  // TryRecover on an already-healthy engine is a no-op.
  ASSERT_TRUE(db->TryRecover().ok());
}

// ------------------------------------------------------- the PRAGMA surface

TEST(HealthPragmaTest, HealthReportsTheCounterSet) {
  auto db = Database::Open({});
  ASSERT_TRUE(db.ok());
  auto r = (*db)->Query("PRAGMA health");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->columns, (std::vector<std::string>{"name", "value"}));
  std::vector<std::string> names;
  for (const auto& row : r->rows) names.push_back(row[0].AsString());
  for (const char* expected :
       {"health", "health_detail", "health_transitions", "io_retries",
        "checksum_failures", "quarantined_pages", "quarantine_hits",
        "scrub_pages_scanned", "scrub_pages_bad", "scrub_passes"}) {
    EXPECT_NE(std::find(names.begin(), names.end(), expected), names.end())
        << "missing PRAGMA health row: " << expected;
  }
  EXPECT_EQ(HealthRow(db->get(), "health"), "Healthy");
  EXPECT_EQ(HealthRow(db->get(), "quarantined_pages"), "0");
}

TEST(HealthPragmaTest, BadPragmasFailCleanly) {
  auto db = Database::Open({});
  ASSERT_TRUE(db.ok());
  auto unknown = (*db)->Query("PRAGMA nonsense");
  ASSERT_FALSE(unknown.ok());
  EXPECT_EQ(unknown.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(unknown.status().message().find("PRAGMA health"),
            std::string::npos);
  auto zero = (*db)->Query("PRAGMA scrub(0)");
  ASSERT_FALSE(zero.ok());
  EXPECT_EQ(zero.status().code(), StatusCode::kInvalidArgument);
  EXPECT_FALSE((*db)->Query("PRAGMA scrub(").ok());
}

TEST(HealthPragmaTest, ScrubOnCleanDatabaseVerifiesEverything) {
  const std::string path = NewDbPath("xorator_health_scrub_clean.db");
  DbOptions options;
  options.path = path;
  auto db = Database::Open(options);
  ASSERT_TRUE(db.ok());
  ASSERT_TRUE((*db)->Execute("CREATE TABLE t (a INTEGER)").ok());
  ASSERT_TRUE((*db)->Execute("INSERT INTO t VALUES (1), (2)").ok());
  ASSERT_TRUE((*db)->Checkpoint().ok());
  auto r = (*db)->Query("PRAGMA scrub(4096)");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->rows.size(), 1u);
  const auto& row = r->rows[0];
  EXPECT_GT(row[0].AsInt(), 0);   // pages_scanned
  EXPECT_EQ(row[3].AsInt(), 0);   // pages_bad
  EXPECT_TRUE(row[5].AsBool());   // wrapped: one slice covered the file
  EXPECT_EQ((*db)->health()->state(), HealthState::kHealthy);
  ASSERT_TRUE((*db)->Close().ok());
  RemoveDb(path);
}

// ----------------------------------------- degraded scans over real damage

TEST(HealthDegradedScanTest, SkipQuarantinedSelectSurvivesACorruptHeapPage) {
  const std::string path = NewDbPath("xorator_health_skipscan.db");
  ordb::PageId first_page = ordb::kInvalidPageId;
  constexpr int kRows = 400;  // enough to span several heap pages
  {
    DbOptions options;
    options.path = path;
    auto db = Database::Open(options);
    ASSERT_TRUE(db.ok());
    ASSERT_TRUE((*db)->Execute("CREATE TABLE t (a INTEGER, b VARCHAR)").ok());
    std::string insert = "INSERT INTO t VALUES ";
    for (int i = 0; i < kRows; ++i) {
      if (i > 0) insert += ", ";
      insert += "(" + std::to_string(i) + ", 'payload-payload-payload-" +
                std::to_string(i) + "')";
    }
    ASSERT_TRUE((*db)->Execute(insert).ok());
    const ordb::TableInfo* t = (*db)->catalog()->FindTable("t");
    ASSERT_NE(t, nullptr);
    first_page = t->heap->first_page();
    ASSERT_NE(first_page, ordb::kInvalidPageId);
    ASSERT_TRUE((*db)->Close().ok());
  }
  // Rot the record area of the chain's head page. The page header — and
  // with it the next-page link the salvage path reads — stays intact.
  {
    std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
    f.seekp(static_cast<std::streamoff>(first_page) * kPageSize + 512);
    for (int i = 0; i < 64; ++i) f.put('\xEE');
  }
  DbOptions options;
  options.path = path;
  auto db = Database::Open(options);
  ASSERT_TRUE(db.ok()) << db.status().ToString();

  // Strict scans must surface the corruption — skipping is opt-in.
  auto strict = (*db)->Query("SELECT COUNT(*) AS n FROM t");
  ASSERT_FALSE(strict.ok());
  EXPECT_EQ(strict.status().code(), StatusCode::kCorruption);
  EXPECT_EQ((*db)->health()->state(), HealthState::kDegraded);
  EXPECT_TRUE((*db)->buffer_pool()->IsQuarantined(first_page));
  EXPECT_EQ((*db)->buffer_pool()->PinnedFrameCount(), 0u);

  // The degraded scan loses that page's rows, not the query.
  QueryOptions skip;
  skip.skip_quarantined = true;
  auto degraded = (*db)->Query("SELECT COUNT(*) AS n FROM t", skip);
  ASSERT_TRUE(degraded.ok()) << degraded.status().ToString();
  const int64_t survivors = degraded->rows[0][0].AsInt();
  EXPECT_GT(survivors, 0);
  EXPECT_LT(survivors, kRows);
  EXPECT_NE(degraded->plan.find("resilience: health=Degraded"),
            std::string::npos);
  EXPECT_NE(degraded->plan.find("skipped_pages=1"), std::string::npos);
  EXPECT_EQ(HealthRow(db->get(), "quarantined_pages"), "1");
  EXPECT_EQ((*db)->buffer_pool()->PinnedFrameCount(), 0u);

  // A checkpoint over poisoned pages would be pointless; crash out.
  (*db)->Kill();
  RemoveDb(path);
}

TEST(HealthDegradedScanTest, TryRecoverRequarantinesPersistentDamage) {
  const std::string path = NewDbPath("xorator_health_requarantine.db");
  ordb::PageId first_page = ordb::kInvalidPageId;
  {
    DbOptions options;
    options.path = path;
    auto db = Database::Open(options);
    ASSERT_TRUE(db.ok());
    ASSERT_TRUE((*db)->Execute("CREATE TABLE t (a INTEGER)").ok());
    ASSERT_TRUE((*db)->Execute("INSERT INTO t VALUES (1), (2)").ok());
    const ordb::TableInfo* t = (*db)->catalog()->FindTable("t");
    ASSERT_NE(t, nullptr);
    first_page = t->heap->first_page();
    ASSERT_TRUE((*db)->Close().ok());
  }
  {  // bit rot the committed heap page
    std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
    f.seekp(static_cast<std::streamoff>(first_page) * kPageSize + 512);
    f.put('\xEE');
  }
  DbOptions options;
  options.path = path;
  auto db = Database::Open(options);
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  ASSERT_FALSE((*db)->Query("SELECT COUNT(*) AS n FROM t").ok());
  ASSERT_TRUE((*db)->buffer_pool()->IsQuarantined(first_page));

  // No journal record covers committed bit rot, so TryRecover cannot heal
  // it — but it must still succeed (the stack rebuilds fine), clear the
  // quarantine, and let the next fetch re-detect and re-quarantine.
  ASSERT_TRUE((*db)->TryRecover().ok());
  EXPECT_EQ((*db)->health()->state(), HealthState::kHealthy);
  EXPECT_FALSE((*db)->buffer_pool()->IsQuarantined(first_page));
  auto again = (*db)->Query("SELECT COUNT(*) AS n FROM t");
  ASSERT_FALSE(again.ok());
  EXPECT_EQ(again.status().code(), StatusCode::kCorruption);
  EXPECT_TRUE((*db)->buffer_pool()->IsQuarantined(first_page));
  EXPECT_EQ((*db)->health()->state(), HealthState::kDegraded);
  (*db)->Kill();
  RemoveDb(path);
}

}  // namespace
}  // namespace xorator
