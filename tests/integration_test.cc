#include <gtest/gtest.h>

#include <map>
#include <set>

#include "benchutil/fixture.h"
#include "benchutil/workload.h"
#include "datagen/dtds.h"
#include "datagen/generators.h"
#include "xml/dtd.h"

namespace xorator {
namespace {

using benchutil::BuildExperimentDb;
using benchutil::ExperimentDb;
using benchutil::ExperimentOptions;
using benchutil::Mapping;
using ordb::QueryResult;
using ordb::Tuple;

std::vector<std::string> AdvisorQueries() {
  std::vector<std::string> out;
  for (const auto& q : benchutil::ShakespeareQueries()) {
    out.push_back(q.hybrid_sql);
    out.push_back(q.xorator_sql);
  }
  for (const auto& q : benchutil::SigmodQueries()) {
    out.push_back(q.hybrid_sql);
    out.push_back(q.xorator_sql);
  }
  return out;
}

QueryResult RunSql(ExperimentDb* db, const std::string& sql) {
  auto r = db->db->Query(sql);
  EXPECT_TRUE(r.ok()) << sql << "\n -> " << r.status().ToString();
  return r.ok() ? *r : QueryResult{};
}

int64_t Count(ExperimentDb* db, const std::string& sql) {
  QueryResult r = RunSql(db, sql);
  if (r.rows.size() != 1 || r.rows[0].empty()) return -1;
  return r.rows[0][0].AsInt();
}

std::multiset<std::string> Column0(const QueryResult& r) {
  std::multiset<std::string> out;
  for (const Tuple& row : r.rows) out.insert(row[0].ToString());
  return out;
}

// ------------------------------------------------------------- Shakespeare

class ShakespeareIntegrationTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    datagen::ShakespeareOptions opts;
    opts.plays = 4;
    opts.acts_per_play = 3;
    opts.scenes_per_act = 3;
    opts.speeches_per_scene = 8;
    corpus_ = new std::vector<std::unique_ptr<xml::Node>>(
        datagen::ShakespeareGenerator(opts).GenerateCorpus());
    std::vector<const xml::Node*> docs;
    for (const auto& d : *corpus_) docs.push_back(d.get());

    ExperimentOptions hybrid_opts;
    hybrid_opts.mapping = Mapping::kHybrid;
    hybrid_opts.advisor_queries = AdvisorQueries();
    auto hybrid = BuildExperimentDb(datagen::kShakespeareDtd, docs,
                                    hybrid_opts);
    ASSERT_TRUE(hybrid.ok()) << hybrid.status().ToString();
    hybrid_ = new ExperimentDb(std::move(*hybrid));

    ExperimentOptions xorator_opts;
    xorator_opts.mapping = Mapping::kXorator;
    xorator_opts.advisor_queries = AdvisorQueries();
    auto xorator = BuildExperimentDb(datagen::kShakespeareDtd, docs,
                                     xorator_opts);
    ASSERT_TRUE(xorator.ok()) << xorator.status().ToString();
    xorator_ = new ExperimentDb(std::move(*xorator));
  }

  static void TearDownTestSuite() {
    delete hybrid_;
    delete xorator_;
    delete corpus_;
    hybrid_ = nullptr;
    xorator_ = nullptr;
    corpus_ = nullptr;
  }

  static std::vector<std::unique_ptr<xml::Node>>* corpus_;
  static ExperimentDb* hybrid_;
  static ExperimentDb* xorator_;
};

std::vector<std::unique_ptr<xml::Node>>* ShakespeareIntegrationTest::corpus_ =
    nullptr;
ExperimentDb* ShakespeareIntegrationTest::hybrid_ = nullptr;
ExperimentDb* ShakespeareIntegrationTest::xorator_ = nullptr;

TEST_F(ShakespeareIntegrationTest, Table1Shape) {
  // Paper Table 1: 17 vs 7 tables, XORator database clearly smaller.
  EXPECT_EQ(hybrid_->schema.tables.size(), 17u);
  EXPECT_EQ(xorator_->schema.tables.size(), 7u);
  EXPECT_LT(xorator_->db->DataBytes(), hybrid_->db->DataBytes());
  EXPECT_LT(xorator_->db->IndexBytes(), hybrid_->db->IndexBytes());
  // Shakespeare data chooses the raw representation (paper Section 4.3).
  EXPECT_FALSE(xorator_->load.used_compression);
}

TEST_F(ShakespeareIntegrationTest, SharedStructuralCounts) {
  // Both databases agree on the number of structural elements.
  for (const char* table : {"play", "act", "scene", "speech", "induct",
                            "prologue", "epilogue"}) {
    std::string sql = std::string("SELECT COUNT(*) AS n FROM ") + table;
    EXPECT_EQ(Count(hybrid_, sql), Count(xorator_, sql)) << table;
  }
  EXPECT_EQ(Count(hybrid_, "SELECT COUNT(*) AS n FROM play"), 4);
}

TEST_F(ShakespeareIntegrationTest, AllPaperQueriesRunOnBothSchemas) {
  for (const auto& q : benchutil::ShakespeareQueries()) {
    auto h = hybrid_->db->Query(q.hybrid_sql);
    ASSERT_TRUE(h.ok()) << q.id << " hybrid: " << h.status().ToString();
    auto x = xorator_->db->Query(q.xorator_sql);
    ASSERT_TRUE(x.ok()) << q.id << " xorator: " << x.status().ToString();
  }
}

TEST_F(ShakespeareIntegrationTest, QS1FlatteningCountsAgree) {
  int64_t h = Count(hybrid_,
                    "SELECT COUNT(*) AS n FROM speech, speaker, line WHERE "
                    "speaker_parentID = speechID AND line_parentID = speechID");
  int64_t x = Count(xorator_,
                    "SELECT COUNT(*) AS n FROM speech, "
                    "table(unnest(speech_speaker, 'SPEAKER')) s, "
                    "table(unnest(speech_line, 'LINE')) l");
  EXPECT_GT(h, 0);
  EXPECT_EQ(h, x);
}

TEST_F(ShakespeareIntegrationTest, QS2MatchedLinesAgree) {
  QueryResult h = RunSql(hybrid_,
                      "SELECT DISTINCT lineID FROM line, stagedir "
                      "WHERE stagedir_parentID = lineID "
                      "AND stagedir_parentCODE = 'LINE'");
  int64_t x = Count(xorator_,
                    "SELECT COUNT(*) AS n FROM speech, "
                    "table(unnest(getElm(speech_line, 'LINE', 'STAGEDIR', "
                    "''), 'LINE')) u");
  EXPECT_GT(x, 0);
  EXPECT_EQ(static_cast<int64_t>(h.rows.size()), x);
}

TEST_F(ShakespeareIntegrationTest, QS3SelectionAgrees) {
  QueryResult h = RunSql(hybrid_,
                      "SELECT DISTINCT lineID FROM line, stagedir "
                      "WHERE stagedir_parentID = lineID "
                      "AND stagedir_parentCODE = 'LINE' "
                      "AND stagedir_value LIKE '%Rising%'");
  int64_t x = Count(xorator_,
                    "SELECT COUNT(*) AS n FROM speech, "
                    "table(unnest(getElm(speech_line, 'LINE', 'STAGEDIR', "
                    "'Rising'), 'LINE')) u");
  EXPECT_GT(x, 0);
  EXPECT_EQ(static_cast<int64_t>(h.rows.size()), x);
}

TEST_F(ShakespeareIntegrationTest, QS4SpeechIdsAgree) {
  // Surrogate ids are assigned in document order by both shredders, so the
  // selected speech ids must agree exactly.
  const auto& queries = benchutil::ShakespeareQueries();
  QueryResult h = RunSql(hybrid_, queries[3].hybrid_sql);
  QueryResult x = RunSql(xorator_, queries[3].xorator_sql);
  EXPECT_GT(h.rows.size(), 0u);
  EXPECT_EQ(Column0(h), Column0(x));
}

TEST_F(ShakespeareIntegrationTest, QS5MatchedLineCountsAgree) {
  int64_t h = Count(
      hybrid_,
      "SELECT COUNT(*) AS n FROM play, act, scene, speech, speaker, line "
      "WHERE play_title = 'Romeo and Juliet' AND act_parentID = playID "
      "AND scene_parentID = actID AND scene_parentCODE = 'ACT' "
      "AND speech_parentID = sceneID AND speech_parentCODE = 'SCENE' "
      "AND speaker_parentID = speechID AND speaker_value = 'ROMEO' "
      "AND line_parentID = speechID AND line_value LIKE '%love%'");
  int64_t x = Count(
      xorator_,
      "SELECT COUNT(*) AS n FROM play, act, scene, speech, "
      "table(unnest(getElm(speech_line, 'LINE', 'LINE', 'love'), 'LINE')) u "
      "WHERE play_title = 'Romeo and Juliet' AND act_parentID = playID "
      "AND scene_parentID = actID AND scene_parentCODE = 'ACT' "
      "AND speech_parentID = sceneID AND speech_parentCODE = 'SCENE' "
      "AND findKeyInElm(speech_speaker, 'SPEAKER', 'ROMEO') = 1");
  EXPECT_EQ(h, x);
}

TEST_F(ShakespeareIntegrationTest, QS6SecondLineCountsAgree) {
  int64_t h = Count(hybrid_,
                    "SELECT COUNT(*) AS n FROM prologue, speech, line "
                    "WHERE speech_parentID = prologueID "
                    "AND speech_parentCODE = 'PROLOGUE' "
                    "AND line_parentID = speechID AND line_childOrder = 2");
  int64_t x = Count(xorator_,
                    "SELECT COUNT(*) AS n FROM speech, "
                    "table(unnest(getElmIndex(speech_line, '', 'LINE', 2, 2), "
                    "'LINE')) u "
                    "WHERE speech_parentCODE = 'PROLOGUE'");
  EXPECT_GT(h, 0);
  EXPECT_EQ(h, x);
}

TEST_F(ShakespeareIntegrationTest, UdfOverheadQueriesAgree) {
  for (const auto& q : benchutil::UdfOverheadQueries()) {
    QueryResult builtin = RunSql(hybrid_, q.hybrid_sql);
    QueryResult udf = RunSql(hybrid_, q.xorator_sql);
    EXPECT_EQ(Column0(builtin), Column0(udf)) << q.id;
    EXPECT_EQ(builtin.udf_stats.scalar_calls, 0u);
    EXPECT_EQ(udf.udf_stats.scalar_calls, builtin.rows.size());
  }
}

TEST_F(ShakespeareIntegrationTest, ScalingLoadsMultiplier) {
  std::vector<const xml::Node*> docs;
  for (const auto& d : *corpus_) docs.push_back(d.get());
  ExperimentOptions opts;
  opts.mapping = Mapping::kXorator;
  opts.load_multiplier = 2;
  auto db2 = BuildExperimentDb(datagen::kShakespeareDtd, docs, opts);
  ASSERT_TRUE(db2.ok()) << db2.status().ToString();
  EXPECT_EQ(Count(&*db2, "SELECT COUNT(*) AS n FROM play"),
            2 * Count(xorator_, "SELECT COUNT(*) AS n FROM play"));
}

// ------------------------------------------------------------------ SIGMOD

class SigmodIntegrationTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    datagen::SigmodOptions opts;
    opts.documents = 150;
    corpus_ = new std::vector<std::unique_ptr<xml::Node>>(
        datagen::SigmodGenerator(opts).GenerateCorpus());
    std::vector<const xml::Node*> docs;
    for (const auto& d : *corpus_) docs.push_back(d.get());

    ExperimentOptions hybrid_opts;
    hybrid_opts.mapping = Mapping::kHybrid;
    hybrid_opts.advisor_queries = AdvisorQueries();
    auto hybrid = BuildExperimentDb(datagen::kSigmodDtd, docs, hybrid_opts);
    ASSERT_TRUE(hybrid.ok()) << hybrid.status().ToString();
    hybrid_ = new ExperimentDb(std::move(*hybrid));

    ExperimentOptions xorator_opts;
    xorator_opts.mapping = Mapping::kXorator;
    xorator_opts.advisor_queries = AdvisorQueries();
    auto xorator = BuildExperimentDb(datagen::kSigmodDtd, docs, xorator_opts);
    ASSERT_TRUE(xorator.ok()) << xorator.status().ToString();
    xorator_ = new ExperimentDb(std::move(*xorator));
  }

  static void TearDownTestSuite() {
    delete hybrid_;
    delete xorator_;
    delete corpus_;
    hybrid_ = nullptr;
    xorator_ = nullptr;
    corpus_ = nullptr;
  }

  static std::vector<std::unique_ptr<xml::Node>>* corpus_;
  static ExperimentDb* hybrid_;
  static ExperimentDb* xorator_;
};

std::vector<std::unique_ptr<xml::Node>>* SigmodIntegrationTest::corpus_ =
    nullptr;
ExperimentDb* SigmodIntegrationTest::hybrid_ = nullptr;
ExperimentDb* SigmodIntegrationTest::xorator_ = nullptr;

TEST_F(SigmodIntegrationTest, Table2Shape) {
  EXPECT_EQ(hybrid_->schema.tables.size(), 7u);
  EXPECT_EQ(xorator_->schema.tables.size(), 1u);
  EXPECT_LT(xorator_->db->DataBytes(), hybrid_->db->DataBytes());
  // The deep DTD chooses the compressed XADT representation (Section 4.4).
  EXPECT_TRUE(xorator_->load.used_compression);
}

TEST_F(SigmodIntegrationTest, AllPaperQueriesRunOnBothSchemas) {
  for (const auto& q : benchutil::SigmodQueries()) {
    auto h = hybrid_->db->Query(q.hybrid_sql);
    ASSERT_TRUE(h.ok()) << q.id << " hybrid: " << h.status().ToString();
    auto x = xorator_->db->Query(q.xorator_sql);
    ASSERT_TRUE(x.ok()) << q.id << " xorator: " << x.status().ToString();
  }
}

TEST_F(SigmodIntegrationTest, QG1AuthorsAgree) {
  QueryResult h = RunSql(hybrid_, benchutil::SigmodQueries()[0].hybrid_sql);
  QueryResult x = RunSql(xorator_,
                      "SELECT u.out FROM pp, "
                      "table(unnest(getElm(getElm(pp_slist, 'aTuple', "
                      "'title', 'Join'), 'author', '', ''), 'author')) u");
  EXPECT_GT(h.rows.size(), 0u);
  EXPECT_EQ(Column0(h), Column0(x));
}

TEST_F(SigmodIntegrationTest, QG2FlatteningAgrees) {
  const auto& q = benchutil::SigmodQueries()[1];
  QueryResult h = RunSql(hybrid_, q.hybrid_sql);
  QueryResult x = RunSql(xorator_, q.xorator_sql);
  ASSERT_GT(h.rows.size(), 0u);
  auto pair_set = [](const QueryResult& r) {
    std::multiset<std::string> out;
    for (const Tuple& row : r.rows) {
      out.insert(row[0].ToString() + "\x01" + row[1].ToString());
    }
    return out;
  };
  EXPECT_EQ(pair_set(h), pair_set(x));
}

TEST_F(SigmodIntegrationTest, QG3SectionNamesAgree) {
  QueryResult h = RunSql(hybrid_, benchutil::SigmodQueries()[2].hybrid_sql);
  QueryResult x = RunSql(xorator_,
                      "SELECT u.out FROM pp, "
                      "table(unnest(getElm(getElm(pp_slist, 'sListTuple', "
                      "'author', 'Worthy'), 'sectionName', '', ''), "
                      "'sectionName')) u "
                      "WHERE findKeyInElm(pp_slist, 'author', 'Worthy') = 1");
  EXPECT_EQ(Column0(h), Column0(x));
}

TEST_F(SigmodIntegrationTest, QG4GroupedCountsAgree) {
  const auto& q = benchutil::SigmodQueries()[3];
  QueryResult h = RunSql(hybrid_, q.hybrid_sql);
  QueryResult x = RunSql(xorator_, q.xorator_sql);
  ASSERT_GT(h.rows.size(), 0u);
  auto as_map = [](const QueryResult& r) {
    std::map<std::string, int64_t> out;
    for (const Tuple& row : r.rows) out[row[0].AsString()] = row[1].AsInt();
    return out;
  };
  EXPECT_EQ(as_map(h), as_map(x));
}

TEST_F(SigmodIntegrationTest, QG5CountsAgree) {
  const auto& q = benchutil::SigmodQueries()[4];
  int64_t h = Count(hybrid_, q.hybrid_sql);
  int64_t x = Count(xorator_, q.xorator_sql);
  EXPECT_EQ(h, x);
}

TEST_F(SigmodIntegrationTest, QG6SecondAuthorsAgree) {
  QueryResult h = RunSql(hybrid_, benchutil::SigmodQueries()[5].hybrid_sql);
  QueryResult x = RunSql(xorator_,
                      "SELECT u.out FROM pp, "
                      "table(unnest(getElmIndex(getElm(pp_slist, 'aTuple', "
                      "'title', 'Join'), 'authors', 'author', 2, 2), "
                      "'author')) u");
  EXPECT_GT(h.rows.size(), 0u);
  EXPECT_EQ(Column0(h), Column0(x));
}

// ----------------------------------------- randomized equivalence property

TEST(RandomizedEquivalenceTest, HybridAndXoratorAgreeOnRandomPlays) {
  auto dtd = xml::ParseDtd(datagen::kPlaysDtd);
  ASSERT_TRUE(dtd.ok());
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    datagen::RandomDocOptions opts;
    opts.seed = seed;
    opts.max_repeat = 4;
    datagen::RandomDocGenerator gen(&*dtd, opts);
    std::vector<std::unique_ptr<xml::Node>> docs;
    for (int d = 0; d < 6; ++d) {
      auto doc = gen.Generate("PLAY");
      ASSERT_TRUE(doc.ok());
      docs.push_back(std::move(*doc));
    }
    std::vector<const xml::Node*> raw;
    for (const auto& d : docs) raw.push_back(d.get());

    ExperimentOptions hybrid_opts;
    hybrid_opts.mapping = Mapping::kHybrid;
    auto hybrid = BuildExperimentDb(datagen::kPlaysDtd, raw, hybrid_opts);
    ASSERT_TRUE(hybrid.ok()) << hybrid.status().ToString();
    ExperimentOptions xorator_opts;
    xorator_opts.mapping = Mapping::kXorator;
    auto xorator = BuildExperimentDb(datagen::kPlaysDtd, raw, xorator_opts);
    ASSERT_TRUE(xorator.ok()) << xorator.status().ToString();

    // Structural counts agree.
    for (const char* table : {"play", "act", "scene", "speech", "induct"}) {
      std::string sql = std::string("SELECT COUNT(*) AS n FROM ") + table;
      EXPECT_EQ(Count(&*hybrid, sql), Count(&*xorator, sql))
          << "seed " << seed << " " << table;
    }
    // Speaker x line flattening agrees.
    int64_t h = Count(&*hybrid,
                      "SELECT COUNT(*) AS n FROM speech, speaker, line "
                      "WHERE speaker_parentID = speechID "
                      "AND line_parentID = speechID");
    int64_t x = Count(&*xorator,
                      "SELECT COUNT(*) AS n FROM speech, "
                      "table(unnest(speech_speaker, 'SPEAKER')) s, "
                      "table(unnest(speech_line, 'LINE')) l");
    EXPECT_EQ(h, x) << "seed " << seed;
    // Second-line order access agrees.
    int64_t h2 = Count(&*hybrid,
                       "SELECT COUNT(*) AS n FROM line "
                       "WHERE line_childOrder = 2");
    int64_t x2 = Count(&*xorator,
                       "SELECT COUNT(*) AS n FROM speech, "
                       "table(unnest(getElmIndex(speech_line, '', 'LINE', 2, "
                       "2), 'LINE')) u");
    EXPECT_EQ(h2, x2) << "seed " << seed;
  }
}

}  // namespace
}  // namespace xorator
