/// Compile-time self-test for the lifetime-annotation layer
/// (src/common/lifetime.h; DESIGN.md section 14).
///
/// This file is never linked into a test binary; CMake compiles it with
/// `-fsyntax-only` in four configurations (see tests/CMakeLists.txt):
///
///  * Without any XO_LIFETIME_SELFTEST_* macro it must compile cleanly on
///    every compiler — proving the annotation macros expand to valid
///    attributes (or to nothing, on GCC) and the annotated APIs stay usable
///    through their intended protocols.
///
///  * With XO_LIFETIME_SELFTEST_PAGE / _TEMP / _ARENA defined (one ctest
///    each), the blocks below add one deliberate dangling-view bug apiece.
///    Under Clang with -Werror=dangling -Werror=dangling-gsl
///    -Werror=return-stack-address each compilation MUST fail; the ctest
///    entries are registered WILL_FAIL, so a "pass" here means the
///    diagnostics actually reject the escape. If one of these tests ever
///    succeeds, the -Werror wiring in the top-level CMakeLists has rotted.

#include <string>
#include <string_view>

#include "common/lifetime.h"
#include "common/result.h"
#include "common/str_util.h"
#include "ordb/buffer_pool.h"
#include "ordb/row_codec.h"
#include "ordb/tuple.h"
#include "xadt/scanner.h"

namespace xorator {

/// Helper declared but never defined: this translation unit is only ever
/// syntax-checked.
std::string MakeTemporaryString();

namespace {

/// The intended protocol: borrow the page bytes inside the guard's scope
/// and copy anything that must survive it.
[[maybe_unused]] Result<std::string> LegalPageUse(ordb::BufferPool* pool,
                                                  ordb::PageId id) {
  XO_ASSIGN_OR_RETURN(ordb::PageRef ref, pool->Fetch(id));
  const char* bytes = ref.data();
  std::string copy(bytes, 8);
  RETURN_IF_ERROR(ref.Release());
  return copy;
}

/// Views derived from a parameter may be returned: the annotation forwards
/// the borrow to the caller's owner.
[[maybe_unused]] std::string_view LegalViewUse(
    std::string_view s XO_LIFETIME_BOUND) {
  return StripWhitespace(s);
}

/// A RowView parsed over a caller-owned buffer is used in place, then
/// materialized into owning Values before the buffer goes away.
[[maybe_unused]] Result<ordb::Tuple> LegalRowUse(
    const ordb::TableSchema& schema, const std::string& record) {
  XO_ASSIGN_OR_RETURN(ordb::RowView row, ordb::RowView::Parse(schema, record));
  ordb::Tuple out;
  row.Materialize(&out);
  return out;
}

#ifdef XO_LIFETIME_SELFTEST_PAGE

/// Deliberate violation: the page bytes escape the PageRef guard. The pin
/// is released when `ref` dies at end of scope, so the returned pointer
/// aims at a frame the pool may recycle — the lifetimebound chain through
/// Result::operator-> and PageRef::data() must reject the return.
[[maybe_unused]] const char* BrokenPageEscape(ordb::BufferPool* pool,
                                              ordb::PageId id) {
  auto ref = pool->Fetch(id);
  return ref->data();
}

#endif  // XO_LIFETIME_SELFTEST_PAGE

#ifdef XO_LIFETIME_SELFTEST_TEMP

/// Deliberate violation: a view over a temporary owner. The string dies at
/// the end of the full-expression, before the view's first use.
[[maybe_unused]] void BrokenTemporaryView() {
  std::string_view dangling = MakeTemporaryString();
  [[maybe_unused]] size_t n = dangling.size();
}

#endif  // XO_LIFETIME_SELFTEST_TEMP

#ifdef XO_LIFETIME_SELFTEST_ARENA

/// Deliberate violation: a RowView's payload escapes the record buffer it
/// was parsed over. `raw()` is lifetime-bound to the view, which is bound
/// to the local `record`, so returning the bytes must be rejected.
[[maybe_unused]] std::string_view BrokenRowEscape(
    const ordb::TableSchema& schema) {
  std::string record = MakeTemporaryString();
  auto row = ordb::RowView::Parse(schema, record);
  return row->raw();
}

#endif  // XO_LIFETIME_SELFTEST_ARENA

}  // namespace
}  // namespace xorator
