/// Runtime lock-rank detector + sharded buffer-pool coverage (DESIGN.md
/// sections 10 and 15).
///
/// Part A proves the rank detector in src/common/mutex.h actually fires:
/// a deliberate inversion, a self-deadlock, and an out-of-order same-rank
/// acquisition each abort with both acquisition sites in the message —
/// and the legal shapes (strictly descending chains, same-rank in
/// ascending address order, try-locks) do not.
///
/// Part B exercises the sharded pool across its bucket latches: bucket
/// sizing, an 8-thread disjoint-page Fetch/Unpin stress (run TSan-clean in
/// the ThreadSanitize CI leg), and the cross-shard invariants — pins drain
/// to zero after a flush, the scrub cursor wraps across every bucket, and
/// quarantine fail-fast stays per-bucket.

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "common/mutex.h"
#include "ordb/buffer_pool.h"
#include "ordb/page.h"
#include "ordb/pager.h"

namespace xorator::ordb {
namespace {

// --------------------------------------------------------------------
// Part A: the rank detector.

#if XO_LOCK_RANK_CHECK_ENABLED

TEST(LockRankDeathTest, InversionAborts) {
  EXPECT_DEATH(
      {
        xo::Mutex leaf{xo::LockRank::kLeafHealth};
        xo::Mutex wal{xo::LockRank::kWal};
        leaf.Lock();
        wal.Lock();  // upward: 100 held, acquiring 400
      },
      "lock rank inversion.*acquiring Wal.*while holding LeafHealth.*"
      "acquired at");
}

TEST(LockRankDeathTest, SelfDeadlockAborts) {
  EXPECT_DEATH(
      {
        xo::Mutex mu{xo::LockRank::kCatalog};
        mu.Lock();
        mu.Lock();  // would hang forever without the detector
      },
      "self-deadlock \\(re-acquisition\\).*acquiring Catalog.*while "
      "holding Catalog");
}

TEST(LockRankDeathTest, SameRankDescendingAddressAborts) {
  EXPECT_DEATH(
      {
        // Two bucket latches acquired against the canonical order. Struct
        // member order guarantees &pair.lo < &pair.hi, exactly like the
        // pool's contiguous bucket array.
        struct {
          xo::Mutex lo{xo::LockRank::kBufferPoolBucket};
          xo::Mutex hi{xo::LockRank::kBufferPoolBucket};
        } pair;
        pair.hi.Lock();
        pair.lo.Lock();  // same rank, lower address: out of order
      },
      "lock rank inversion.*acquiring BufferPoolBucket.*while holding "
      "BufferPoolBucket");
}

TEST(LockRankDeathTest, SharedAcquisitionsParticipate) {
  EXPECT_DEATH(
      {
        xo::SharedMutex catalog{xo::LockRank::kCatalog};
        xo::SharedMutex statement{xo::LockRank::kStatement};
        catalog.ReaderLock();
        statement.ReaderLock();  // readers invert the hierarchy too
      },
      "lock rank inversion.*acquiring Statement.*while holding Catalog");
}

TEST(LockRankTest, DescendingChainIsLegal) {
  // The engine's deepest legal chain, spelled out rank by rank.
  xo::SharedMutex statement{xo::LockRank::kStatement};
  xo::Mutex maint{xo::LockRank::kBufferPoolMaint};
  xo::Mutex bucket{xo::LockRank::kBufferPoolBucket};
  xo::Mutex io{xo::LockRank::kPagerIo};
  xo::Mutex wal{xo::LockRank::kWal};
  xo::Mutex health{xo::LockRank::kLeafHealth};
  statement.ReaderLock();
  maint.Lock();
  bucket.Lock();
  io.Lock();
  wal.Lock();
  health.Lock();
  health.Unlock();
  wal.Unlock();
  io.Unlock();
  bucket.Unlock();
  maint.Unlock();
  statement.ReaderUnlock();
}

TEST(LockRankTest, SameRankAscendingAddressIsLegal) {
  xo::Mutex buckets[3] = {xo::Mutex{xo::LockRank::kBufferPoolBucket},
                          xo::Mutex{xo::LockRank::kBufferPoolBucket},
                          xo::Mutex{xo::LockRank::kBufferPoolBucket}};
  for (auto& b : buckets) b.Lock();  // the canonical cross-bucket sweep
  for (auto& b : buckets) b.Unlock();
}

TEST(LockRankTest, ReleaseUnwindsTheRecord) {
  // After an inner lock is released, its rank no longer constrains the
  // thread: acquire-release-acquire at alternating ranks must be clean.
  xo::Mutex wal{xo::LockRank::kWal};
  xo::Mutex catalog{xo::LockRank::kCatalog};
  wal.Lock();
  wal.Unlock();
  catalog.Lock();  // higher than kWal, legal because wal was released
  catalog.Unlock();
  wal.Lock();
  wal.Unlock();
}

TEST(LockRankTest, FailedTryLockLeavesNoRecord) {
  xo::Mutex mu{xo::LockRank::kWal};
  xo::Mutex higher{xo::LockRank::kCatalog};
  std::atomic<bool> holder_ready{false};
  std::atomic<bool> done{false};
  std::thread holder([&] {
    mu.Lock();
    holder_ready = true;
    while (!done) std::this_thread::yield();
    mu.Unlock();
  });
  while (!holder_ready) std::this_thread::yield();
  EXPECT_FALSE(mu.TryLock());  // contended: must fail AND leave no record
  // If the failed TryLock leaked a held-rank entry, this upward
  // acquisition would abort.
  higher.Lock();
  higher.Unlock();
  done = true;
  holder.join();
}

#else  // !XO_LOCK_RANK_CHECK_ENABLED

TEST(LockRankDeathTest, SkippedWithoutDetector) {
  GTEST_SKIP() << "the lock-rank detector is compiled out in this build "
                  "(NDEBUG without XORATOR_LOCK_RANK_CHECK); the death "
                  "tests run under the Debug/Sanitize/ThreadSanitize "
                  "configurations";
}

#endif  // XO_LOCK_RANK_CHECK_ENABLED

// --------------------------------------------------------------------
// Part B: the sharded pool.

TEST(ShardedPoolTest, BucketCountScalesWithCapacity) {
  MemoryPager pager;
  // Below one full bucket: a single latch (preserves the exact global LRU
  // the capacity-1/2/4 eviction tests rely on).
  EXPECT_EQ(BufferPool(&pager, 1).bucket_count(), 1u);
  EXPECT_EQ(BufferPool(&pager, 8).bucket_count(), 1u);
  EXPECT_EQ(BufferPool(&pager, 9).bucket_count(), 1u);
  EXPECT_EQ(BufferPool(&pager, 16).bucket_count(), 2u);
  EXPECT_EQ(BufferPool(&pager, 64).bucket_count(), 8u);
  // Capped at kMaxBuckets no matter how large the pool grows.
  EXPECT_EQ(BufferPool(&pager, 4096).bucket_count(), BufferPool::kMaxBuckets);
}

/// Seeds `n` pages through `pool`, each page stamped with its own id in
/// the first bytes, and flushes them to the pager so later fetches verify.
std::vector<PageId> SeedPages(BufferPool& pool, int n) {
  std::vector<PageId> ids;
  for (int i = 0; i < n; ++i) {
    auto page = pool.Create();
    EXPECT_TRUE(page.ok());
    PageId id = page->id();
    std::memcpy(page->data() + kPageHeaderBytes, &id, sizeof(id));
    page->MarkDirty();
    ids.push_back(id);
  }
  EXPECT_TRUE(pool.FlushAll().ok());
  return ids;
}

TEST(ShardedPoolTest, DisjointPageStressEightThreads) {
  MemoryPager pager;
  BufferPool pool(&pager, 64);  // 8 buckets, 8 frames each
  ASSERT_EQ(pool.bucket_count(), 8u);
  // 4x the capacity, so the stress continually misses and evicts across
  // every bucket, exercising write-backs and checksum verification under
  // concurrency — not just latched hit paths.
  const std::vector<PageId> ids = SeedPages(pool, 256);
  constexpr int kThreads = 8;
  constexpr int kIters = 400;
  std::atomic<int> failures{0};
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      // Thread t touches only pages hashing to bucket t: fully disjoint
      // pages AND disjoint latches — the no-contention contract the shard
      // split exists to provide.
      for (int i = 0; i < kIters; ++i) {
        const PageId id = ids[(t + static_cast<size_t>(i) * kThreads) %
                              ids.size()];
        auto page = pool.Fetch(id);
        if (!page.ok()) {
          ++failures;
          return;
        }
        PageId stamped = kInvalidPageId;
        std::memcpy(&stamped, page->data() + kPageHeaderBytes,
                    sizeof(stamped));
        if (stamped != id) ++failures;
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(failures, 0);
  EXPECT_EQ(pool.PinnedFrameCount(), 0u);
  const BufferPoolStats stats = pool.stats();
  EXPECT_EQ(stats.hits + stats.misses,
            static_cast<uint64_t>(kThreads) * kIters);
  EXPECT_EQ(stats.checksum_failures, 0u);
  EXPECT_EQ(stats.quarantined_pages, 0u);
}

TEST(ShardedPoolTest, PinsDrainToZeroAfterFlush) {
  MemoryPager pager;
  BufferPool pool(&pager, 32);
  std::vector<PageId> ids = SeedPages(pool, 48);
  {
    // Hold a few live pins across buckets, then release them all.
    std::vector<PageRef> held;
    for (int i = 0; i < 8; ++i) {
      auto page = pool.Fetch(ids[static_cast<size_t>(i) * 5]);
      ASSERT_TRUE(page.ok());
      held.push_back(std::move(*page));
    }
    EXPECT_EQ(pool.PinnedFrameCount(), 8u);
  }
  // The checkpoint-shaped quiescent point: flush everything, no pins left.
  ASSERT_TRUE(pool.FlushAll().ok());
  EXPECT_EQ(pool.PinnedFrameCount(), 0u);
  EXPECT_GT(pool.stats().writebacks, 0u);
}

TEST(ShardedPoolTest, ScrubCursorWrapsAcrossBuckets) {
  MemoryPager pager;
  BufferPool pool(&pager, 16);  // 2 buckets
  ASSERT_EQ(pool.bucket_count(), 2u);
  SeedPages(pool, 41);  // odd count: pages of both buckets, uneven tail
  const uint64_t total = pager.page_count();
  // Walk the file in slices smaller than a bucket's share; the single
  // cursor must still visit every page of every bucket exactly once per
  // pass and report the wrap at the file boundary.
  uint64_t scanned = 0;
  bool wrapped = false;
  for (int slice = 0; slice < 100 && !wrapped; ++slice) {
    auto report = pool.ScrubSlice(7);
    ASSERT_TRUE(report.ok());
    scanned += report->pages_scanned;
    wrapped = report->wrapped;
  }
  EXPECT_TRUE(wrapped);
  EXPECT_EQ(scanned, total);
  EXPECT_EQ(pool.stats().scrub_passes, 1u);
  // A second pass restarts cleanly from page zero.
  auto report = pool.ScrubSlice(total);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->wrapped);
  EXPECT_EQ(report->pages_scanned, total);
}

TEST(ShardedPoolTest, QuarantineFailFastIsPerBucket) {
  MemoryPager pager;
  std::vector<PageId> ids;
  {
    BufferPool seeder(&pager, 64);
    ids = SeedPages(seeder, 32);
  }
  // Corrupt one page behind the pool's back (no checksum restamp).
  const PageId bad = ids[5];
  const PageId good_same_bucket = ids[5 + 16];  // 16 ≡ 0 mod 8: same bucket
  const PageId good_other_bucket = ids[6];
  {
    char garbage[kPageSize];
    std::memset(garbage, 0xAB, sizeof(garbage));
    ASSERT_TRUE(pager.Write(bad, garbage).ok());
  }
  BufferPool pool(&pager, 64);  // cold pool: every fetch reads the disk
  // Bucket assignment is id % bucket_count (stable public contract via
  // bucket_count()): ids 16 apart share a bucket, adjacent ids do not.
  ASSERT_EQ(bad % pool.bucket_count(), good_same_bucket % pool.bucket_count());
  ASSERT_NE(bad % pool.bucket_count(),
            good_other_bucket % pool.bucket_count());
  auto fetched = pool.Fetch(bad);
  ASSERT_FALSE(fetched.ok());
  EXPECT_EQ(fetched.status().code(), StatusCode::kCorruption);
  EXPECT_TRUE(pool.IsQuarantined(bad));
  // Fail-fast: the second fetch is rejected without disk I/O.
  auto again = pool.Fetch(bad);
  ASSERT_FALSE(again.ok());
  EXPECT_EQ(pool.stats().quarantine_hits, 1u);
  EXPECT_EQ(pool.stats().quarantined_pages, 1u);
  // Containment is per page, and a fortiori per bucket: neighbours in the
  // same bucket and pages in other buckets keep fetching normally.
  EXPECT_TRUE(pool.Fetch(good_same_bucket).ok());
  EXPECT_TRUE(pool.Fetch(good_other_bucket).ok());
  EXPECT_EQ(pool.QuarantinedPages(), std::vector<PageId>{bad});
  // Recovery clears the set; the still-corrupt page re-quarantines on the
  // next fetch.
  pool.ClearQuarantine();
  EXPECT_FALSE(pool.IsQuarantined(bad));
  ASSERT_FALSE(pool.Fetch(bad).ok());
  EXPECT_TRUE(pool.IsQuarantined(bad));
}

}  // namespace
}  // namespace xorator::ordb
