#include <gtest/gtest.h>

#include "benchutil/fixture.h"
#include "datagen/dtds.h"
#include "dtdgraph/simplify.h"
#include "mapping/mapper.h"
#include "xml/dtd.h"

namespace xorator::mapping {
namespace {

using benchutil::MapDtd;
using benchutil::Mapping;

std::vector<std::string> ColumnNames(const TableSpec& t) {
  std::vector<std::string> out;
  for (const ColumnSpec& c : t.columns) out.push_back(c.name);
  return out;
}

std::vector<std::string> TableNames(const MappedSchema& s) {
  std::vector<std::string> out;
  for (const TableSpec& t : s.tables) out.push_back(t.name);
  return out;
}

// ---------------------------------------------------------------- Figure 5

TEST(HybridMappingTest, PlaysDtdMatchesFigure5) {
  auto schema = MapDtd(datagen::kPlaysDtd, Mapping::kHybrid);
  ASSERT_TRUE(schema.ok()) << schema.status().ToString();
  EXPECT_EQ(schema->algorithm, "hybrid");
  // The 9 relations of Figure 5.
  std::vector<std::string> names = TableNames(*schema);
  std::sort(names.begin(), names.end());
  EXPECT_EQ(names, (std::vector<std::string>{"act", "induct", "line", "play",
                                             "scene", "speaker", "speech",
                                             "subhead", "subtitle"}));

  const TableSpec* play = schema->FindTable("play");
  ASSERT_NE(play, nullptr);
  EXPECT_EQ(ColumnNames(*play), (std::vector<std::string>{"playID"}));

  const TableSpec* act = schema->FindTable("act");
  ASSERT_NE(act, nullptr);
  EXPECT_EQ(ColumnNames(*act),
            (std::vector<std::string>{"actID", "act_parentID",
                                      "act_childOrder", "act_title",
                                      "act_prologue"}));
  EXPECT_EQ(act->columns[0].type, ColumnType::kInteger);
  EXPECT_EQ(act->columns[3].type, ColumnType::kVarchar);

  const TableSpec* scene = schema->FindTable("scene");
  EXPECT_EQ(ColumnNames(*scene),
            (std::vector<std::string>{"sceneID", "scene_parentID",
                                      "scene_parentCODE", "scene_childOrder",
                                      "scene_title"}));

  const TableSpec* induct = schema->FindTable("induct");
  EXPECT_EQ(ColumnNames(*induct),
            (std::vector<std::string>{"inductID", "induct_parentID",
                                      "induct_childOrder", "induct_title"}));

  const TableSpec* speech = schema->FindTable("speech");
  EXPECT_EQ(ColumnNames(*speech),
            (std::vector<std::string>{"speechID", "speech_parentID",
                                      "speech_parentCODE",
                                      "speech_childOrder"}));

  const TableSpec* subtitle = schema->FindTable("subtitle");
  EXPECT_EQ(ColumnNames(*subtitle),
            (std::vector<std::string>{"subtitleID", "subtitle_parentID",
                                      "subtitle_parentCODE",
                                      "subtitle_childOrder",
                                      "subtitle_value"}));

  const TableSpec* subhead = schema->FindTable("subhead");
  EXPECT_EQ(ColumnNames(*subhead),
            (std::vector<std::string>{"subheadID", "subhead_parentID",
                                      "subhead_childOrder", "subhead_value"}));

  const TableSpec* speaker = schema->FindTable("speaker");
  EXPECT_EQ(ColumnNames(*speaker),
            (std::vector<std::string>{"speakerID", "speaker_parentID",
                                      "speaker_childOrder", "speaker_value"}));

  const TableSpec* line = schema->FindTable("line");
  EXPECT_EQ(ColumnNames(*line),
            (std::vector<std::string>{"lineID", "line_parentID",
                                      "line_childOrder", "line_value"}));
}

// ---------------------------------------------------------------- Figure 6

TEST(XoratorMappingTest, PlaysDtdMatchesFigure6) {
  auto schema = MapDtd(datagen::kPlaysDtd, Mapping::kXorator);
  ASSERT_TRUE(schema.ok()) << schema.status().ToString();
  EXPECT_EQ(schema->algorithm, "xorator");
  std::vector<std::string> names = TableNames(*schema);
  std::sort(names.begin(), names.end());
  EXPECT_EQ(names, (std::vector<std::string>{"act", "induct", "play", "scene",
                                             "speech"}));

  const TableSpec* act = schema->FindTable("act");
  ASSERT_NE(act, nullptr);
  EXPECT_EQ(ColumnNames(*act),
            (std::vector<std::string>{"actID", "act_parentID",
                                      "act_childOrder", "act_title",
                                      "act_subtitle", "act_prologue"}));
  EXPECT_EQ(act->columns[4].type, ColumnType::kXadt);
  EXPECT_EQ(act->columns[5].type, ColumnType::kVarchar);

  const TableSpec* scene = schema->FindTable("scene");
  EXPECT_EQ(ColumnNames(*scene),
            (std::vector<std::string>{"sceneID", "scene_parentID",
                                      "scene_parentCODE", "scene_childOrder",
                                      "scene_title", "scene_subtitle",
                                      "scene_subhead"}));
  EXPECT_EQ(scene->columns[5].type, ColumnType::kXadt);
  EXPECT_EQ(scene->columns[6].type, ColumnType::kXadt);

  const TableSpec* induct = schema->FindTable("induct");
  EXPECT_EQ(ColumnNames(*induct),
            (std::vector<std::string>{"inductID", "induct_parentID",
                                      "induct_childOrder", "induct_title",
                                      "induct_subtitle"}));

  const TableSpec* speech = schema->FindTable("speech");
  EXPECT_EQ(ColumnNames(*speech),
            (std::vector<std::string>{"speechID", "speech_parentID",
                                      "speech_parentCODE",
                                      "speech_childOrder", "speech_speaker",
                                      "speech_line"}));
  EXPECT_EQ(speech->columns[4].type, ColumnType::kXadt);
  EXPECT_EQ(speech->columns[5].type, ColumnType::kXadt);
}

// ----------------------------------------------------- Table 1 and Table 2

TEST(MappingCountsTest, ShakespeareTableCountsMatchTable1) {
  auto hybrid = MapDtd(datagen::kShakespeareDtd, Mapping::kHybrid);
  auto xorator = MapDtd(datagen::kShakespeareDtd, Mapping::kXorator);
  ASSERT_TRUE(hybrid.ok()) << hybrid.status().ToString();
  ASSERT_TRUE(xorator.ok()) << xorator.status().ToString();
  EXPECT_EQ(hybrid->tables.size(), 17u);  // paper Table 1
  EXPECT_EQ(xorator->tables.size(), 7u);  // paper Table 1
}

TEST(MappingCountsTest, SigmodTableCountsMatchTable2) {
  auto hybrid = MapDtd(datagen::kSigmodDtd, Mapping::kHybrid);
  auto xorator = MapDtd(datagen::kSigmodDtd, Mapping::kXorator);
  ASSERT_TRUE(hybrid.ok()) << hybrid.status().ToString();
  ASSERT_TRUE(xorator.ok()) << xorator.status().ToString();
  EXPECT_EQ(hybrid->tables.size(), 7u);   // paper Table 2
  EXPECT_EQ(xorator->tables.size(), 1u);  // paper Table 2
}

TEST(MappingCountsTest, ShakespeareXoratorRelations) {
  auto schema = MapDtd(datagen::kShakespeareDtd, Mapping::kXorator);
  ASSERT_TRUE(schema.ok());
  std::vector<std::string> names = TableNames(*schema);
  std::sort(names.begin(), names.end());
  EXPECT_EQ(names, (std::vector<std::string>{"act", "epilogue", "induct",
                                             "play", "prologue", "scene",
                                             "speech"}));
  // FM and PERSONAE collapse into XADT attributes of play (rule 1).
  const TableSpec* play = schema->FindTable("play");
  int fm = play->ColumnIndex("play_fm");
  int personae = play->ColumnIndex("play_personae");
  ASSERT_GE(fm, 0);
  ASSERT_GE(personae, 0);
  EXPECT_EQ(play->columns[fm].type, ColumnType::kXadt);
  EXPECT_EQ(play->columns[personae].type, ColumnType::kXadt);
  // LINE (mixed content with STAGEDIR inside) becomes speech_line XADT.
  const TableSpec* speech = schema->FindTable("speech");
  int line = speech->ColumnIndex("speech_line");
  ASSERT_GE(line, 0);
  EXPECT_EQ(speech->columns[line].type, ColumnType::kXadt);
}

TEST(MappingCountsTest, SigmodXoratorSingleTable) {
  auto schema = MapDtd(datagen::kSigmodDtd, Mapping::kXorator);
  ASSERT_TRUE(schema.ok());
  const TableSpec& pp = schema->tables[0];
  EXPECT_EQ(pp.name, "pp");
  int slist = pp.ColumnIndex("pp_slist");
  ASSERT_GE(slist, 0);
  EXPECT_EQ(pp.columns[slist].type, ColumnType::kXadt);
  // Leaf children of PP are plain strings.
  int volume = pp.ColumnIndex("pp_volume");
  ASSERT_GE(volume, 0);
  EXPECT_EQ(pp.columns[volume].type, ColumnType::kVarchar);
}

TEST(MappingCountsTest, SigmodHybridDeepInlining) {
  auto schema = MapDtd(datagen::kSigmodDtd, Mapping::kHybrid);
  ASSERT_TRUE(schema.ok());
  const TableSpec* atuple = schema->FindTable("atuple");
  ASSERT_NE(atuple, nullptr);
  // Toindex/index is inlined two levels deep with a path-prefixed name,
  // including its Xlink attribute.
  EXPECT_GE(atuple->ColumnIndex("atuple_toindex_index"), 0);
  EXPECT_GE(atuple->ColumnIndex("atuple_toindex_index_href"), 0);
  EXPECT_GE(atuple->ColumnIndex("atuple_title_articlecode"), 0);
  const TableSpec* author = schema->FindTable("author");
  ASSERT_NE(author, nullptr);
  EXPECT_GE(author->ColumnIndex("author_authorposition"), 0);
  EXPECT_GE(author->ColumnIndex("author_value"), 0);
}

// ----------------------------------------------------------- other mappers

TEST(SharedMappingTest, SharedCreatesRelationsForSharedElements) {
  auto shared = MapDtd(datagen::kPlaysDtd, Mapping::kShared);
  ASSERT_TRUE(shared.ok());
  // TITLE (in-degree > 1) becomes a relation under Shared but not Hybrid.
  EXPECT_NE(shared->FindTable("title"), nullptr);
  auto hybrid = MapDtd(datagen::kPlaysDtd, Mapping::kHybrid);
  EXPECT_EQ(hybrid->FindTable("title"), nullptr);
  EXPECT_GT(shared->tables.size(), hybrid->tables.size());
}

TEST(PerElementMappingTest, OneTablePerElement) {
  auto schema = MapDtd(datagen::kPlaysDtd, Mapping::kPerElement);
  ASSERT_TRUE(schema.ok());
  EXPECT_EQ(schema->tables.size(), 11u);  // 11 declared elements
}

TEST(RecursiveDtdTest, RecursionBrokenByRelation) {
  const char* kRecursive =
      "<!ELEMENT part (name, part*)> <!ELEMENT name (#PCDATA)>";
  auto hybrid = MapDtd(kRecursive, Mapping::kHybrid);
  ASSERT_TRUE(hybrid.ok()) << hybrid.status().ToString();
  EXPECT_NE(hybrid->FindTable("part"), nullptr);
  auto xorator = MapDtd(kRecursive, Mapping::kXorator);
  ASSERT_TRUE(xorator.ok()) << xorator.status().ToString();
  // A recursive element cannot be an XADT attribute.
  EXPECT_NE(xorator->FindTable("part"), nullptr);
}

TEST(MutualRecursionTest, OneRelationPerCycle) {
  const char* kMutual =
      "<!ELEMENT root (a)> <!ELEMENT a (b?) > <!ELEMENT b (a?)>";
  auto hybrid = MapDtd(kMutual, Mapping::kHybrid);
  ASSERT_TRUE(hybrid.ok()) << hybrid.status().ToString();
  // root plus at least one relation inside the {a, b} cycle.
  EXPECT_GE(hybrid->tables.size(), 2u);
  bool a_or_b = hybrid->FindTable("a") != nullptr ||
                hybrid->FindTable("b") != nullptr;
  EXPECT_TRUE(a_or_b);
}

TEST(DdlTest, GeneratesCreateTables) {
  auto schema = MapDtd(datagen::kPlaysDtd, Mapping::kXorator);
  ASSERT_TRUE(schema.ok());
  std::string ddl = schema->ToDdl();
  EXPECT_NE(ddl.find("CREATE TABLE speech ("), std::string::npos);
  EXPECT_NE(ddl.find("speech_speaker XADT"), std::string::npos);
  EXPECT_NE(ddl.find("speechID INTEGER PRIMARY KEY"), std::string::npos);
}

TEST(ParentTablesTest, ParentCodeOnlyWithMultipleParents) {
  auto schema = MapDtd(datagen::kPlaysDtd, Mapping::kHybrid);
  ASSERT_TRUE(schema.ok());
  EXPECT_TRUE(schema->FindTable("speech")->has_parent_code());
  EXPECT_FALSE(schema->FindTable("act")->has_parent_code());
  auto parents = schema->parent_tables_of_element.at("SPEECH");
  std::sort(parents.begin(), parents.end());
  EXPECT_EQ(parents, (std::vector<std::string>{"ACT", "SCENE"}));
}

}  // namespace
}  // namespace xorator::mapping
