#include <gtest/gtest.h>

#include "ordb/database.h"
#include "xadt/functions.h"

namespace xorator::ordb {
namespace {

/// Plan-shape coverage: what the planner chooses under different schemas,
/// statistics and options.
class PlannerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto db = Database::Open({});
    ASSERT_TRUE(db.ok());
    db_ = std::move(*db);
    ASSERT_TRUE(xadt::RegisterXadtFunctions(db_->functions()).ok());
    ASSERT_TRUE(
        db_->Execute("CREATE TABLE big (id INTEGER, fk INTEGER, v VARCHAR)")
            .ok());
    ASSERT_TRUE(
        db_->Execute("CREATE TABLE small (id INTEGER, name VARCHAR)").ok());
    // 2000 rows in big (fk spreads over 100 groups), 100 in small.
    std::vector<Tuple> big_rows;
    for (int i = 0; i < 2000; ++i) {
      big_rows.push_back({Value::Int(i), Value::Int(i % 100),
                          Value::Varchar("value-" + std::to_string(i % 7))});
    }
    ASSERT_TRUE(db_->BulkInsert("big", big_rows).ok());
    std::vector<Tuple> small_rows;
    for (int i = 0; i < 100; ++i) {
      small_rows.push_back(
          {Value::Int(i), Value::Varchar("name-" + std::to_string(i))});
    }
    ASSERT_TRUE(db_->BulkInsert("small", small_rows).ok());
    ASSERT_TRUE(db_->RunStats().ok());
  }

  std::string Plan(const std::string& sql) {
    auto plan = db_->Explain(sql);
    EXPECT_TRUE(plan.ok()) << sql << ": " << plan.status().ToString();
    return plan.ok() ? *plan : "";
  }

  std::unique_ptr<Database> db_;
};

TEST_F(PlannerTest, FilterPushdownBelowJoin) {
  std::string plan = Plan(
      "SELECT v FROM big, small WHERE fk = small.id AND name = 'name-3'");
  // The name filter must sit below the join, directly over small's scan.
  size_t join = plan.find("Join");
  size_t filter = plan.find("Filter(small.name = 'name-3')");
  ASSERT_NE(join, std::string::npos) << plan;
  ASSERT_NE(filter, std::string::npos) << plan;
  EXPECT_GT(filter, join) << plan;
}

TEST_F(PlannerTest, IndexScanChosenForEqualityWithIndex) {
  ASSERT_TRUE(db_->Execute("CREATE INDEX i1 ON big (id)").ok());
  EXPECT_NE(Plan("SELECT v FROM big WHERE id = 7").find("IndexScan"),
            std::string::npos);
  // Non-equality predicates do not use the point index.
  EXPECT_EQ(Plan("SELECT v FROM big WHERE id > 7").find("IndexScan"),
            std::string::npos);
}

TEST_F(PlannerTest, IndexJoinRequiresSelectiveOuter) {
  ASSERT_TRUE(db_->Execute("CREATE INDEX i2 ON big (fk)").ok());
  ASSERT_TRUE(db_->RunStats().ok());
  // Selective outer (one small row) -> index NL join into big.
  std::string selective = Plan(
      "SELECT v FROM small, big WHERE small.id = big.fk "
      "AND name = 'name-3'");
  EXPECT_NE(selective.find("IndexNLJoin"), std::string::npos) << selective;
  // Unselective outer (all 2000 big rows probing small) -> hash join.
  ASSERT_TRUE(db_->Execute("CREATE INDEX i3 ON small (id)").ok());
  ASSERT_TRUE(db_->RunStats().ok());
  std::string unselective =
      Plan("SELECT v FROM big, small WHERE big.fk = small.id");
  EXPECT_EQ(unselective.find("IndexNLJoin"), std::string::npos)
      << unselective;
  EXPECT_NE(unselective.find("HashJoin"), std::string::npos) << unselective;
}

TEST_F(PlannerTest, SortMergeWhenBuildSideExceedsSortHeap) {
  db_->mutable_options()->planner.enable_index_join = false;
  db_->mutable_options()->planner.sort_heap_bytes = 1024;  // tiny
  std::string plan =
      Plan("SELECT v FROM big, small WHERE big.fk = small.id");
  EXPECT_NE(plan.find("SortMergeJoin"), std::string::npos) << plan;
}

TEST_F(PlannerTest, CrossProductUsesNestedLoop) {
  std::string plan = Plan("SELECT v FROM big, small");
  EXPECT_NE(plan.find("NestedLoopJoin"), std::string::npos) << plan;
}

TEST_F(PlannerTest, NonEquiJoinPredicateBecomesResidualFilter) {
  std::string plan =
      Plan("SELECT v FROM big, small WHERE big.fk < small.id");
  EXPECT_NE(plan.find("NestedLoopJoin"), std::string::npos) << plan;
  EXPECT_NE(plan.find("big.fk < small.id"), std::string::npos) << plan;
}

TEST_F(PlannerTest, MultiKeyEquiJoin) {
  ASSERT_TRUE(
      db_->Execute("CREATE TABLE pairs (a INTEGER, b INTEGER)").ok());
  ASSERT_TRUE(db_->Execute("INSERT INTO pairs VALUES (1, 1), (2, 2)").ok());
  std::string plan = Plan(
      "SELECT v FROM big, pairs WHERE big.fk = pairs.a AND big.id = pairs.b");
  // Both keys land in one join.
  EXPECT_NE(plan.find(" = "), std::string::npos);
  auto r = db_->Query(
      "SELECT big.id FROM big, pairs WHERE big.fk = pairs.a "
      "AND big.id = pairs.b");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->rows.size(), 2u);  // rows 1 and 2 have id == fk
}

TEST_F(PlannerTest, AggregatePlacedAboveJoins) {
  std::string plan = Plan(
      "SELECT name, COUNT(*) AS n FROM small, big WHERE small.id = big.fk "
      "GROUP BY name");
  size_t agg = plan.find("Aggregate");
  size_t join = plan.find("Join");
  ASSERT_NE(agg, std::string::npos);
  ASSERT_NE(join, std::string::npos);
  EXPECT_LT(agg, join);
}

TEST_F(PlannerTest, DistinctAboveProjection) {
  std::string plan = Plan("SELECT DISTINCT v FROM big");
  size_t distinct = plan.find("Distinct");
  size_t project = plan.find("Project");
  ASSERT_NE(distinct, std::string::npos);
  ASSERT_NE(project, std::string::npos);
  EXPECT_LT(distinct, project);
}

TEST_F(PlannerTest, LateralFunctionArgsMustReferenceEarlierItems) {
  ASSERT_TRUE(db_->Execute("CREATE TABLE fx (x XADT)").ok());
  // Function argument referencing a *later* FROM item is rejected.
  auto bad = db_->Query(
      "SELECT u.out FROM table(unnest(fx.x, 'a')) u, fx");
  EXPECT_FALSE(bad.ok());
  // Proper order works.
  ASSERT_TRUE(db_->Execute("INSERT INTO fx VALUES ('<a>1</a>')").ok());
  auto good = db_->Query("SELECT u.out FROM fx, table(unnest(x, 'a')) u");
  ASSERT_TRUE(good.ok()) << good.status().ToString();
  EXPECT_EQ(good->rows.size(), 1u);
}

TEST_F(PlannerTest, StatsImproveSelectivityEstimates) {
  // Without an index on v (ndv = 7 over 2000 rows: unselective), a filter
  // on v still runs; with stats the estimate flows into join sizing.
  auto r = db_->Query("SELECT COUNT(*) AS n FROM big WHERE v = 'value-3'");
  ASSERT_TRUE(r.ok());
  EXPECT_GT(r->rows[0][0].AsInt(), 200);
}

TEST_F(PlannerTest, OrderByMissingColumnRejected) {
  EXPECT_FALSE(db_->Query("SELECT v FROM big ORDER BY nosuch").ok());
}

TEST_F(PlannerTest, GroupByNonColumnAggregatesRejected) {
  EXPECT_FALSE(db_->Query("SELECT COUNT(*) FROM big GROUP BY COUNT(*)").ok());
}

TEST_F(PlannerTest, FromlessQueryRejected) {
  EXPECT_FALSE(db_->Query("SELECT 1").ok());
}

}  // namespace
}  // namespace xorator::ordb
