#include <gtest/gtest.h>

#include "benchutil/fixture.h"
#include "datagen/dtds.h"
#include "datagen/generators.h"
#include "dtdgraph/simplify.h"
#include "shred/reconstruct.h"
#include "xml/dtd.h"
#include "xml/parser.h"
#include "xml/serializer.h"

namespace xorator::shred {
namespace {

using benchutil::BuildExperimentDb;
using benchutil::ExperimentOptions;
using benchutil::Mapping;

Result<std::vector<std::unique_ptr<xml::Node>>> RoundTrip(
    const char* dtd_text, const std::vector<const xml::Node*>& docs,
    Mapping mapping) {
  ExperimentOptions opts;
  opts.mapping = mapping;
  XO_ASSIGN_OR_RETURN(auto db, BuildExperimentDb(dtd_text, docs, opts));
  XO_ASSIGN_OR_RETURN(auto dtd, xml::ParseDtd(dtd_text));
  XO_ASSIGN_OR_RETURN(auto simplified, dtdgraph::Simplify(dtd));
  Reconstructor reconstructor(db.db.get(), &db.schema, &simplified);
  return reconstructor.ReconstructAll();
}

TEST(EquivalentModuloInterleaveTest, Basics) {
  auto a = xml::ParseDocument("<s><a>1</a><b>2</b><a>3</a></s>");
  auto b = xml::ParseDocument("<s><a>1</a><a>3</a><b>2</b></s>");
  auto c = xml::ParseDocument("<s><a>3</a><a>1</a><b>2</b></s>");
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_TRUE(c.ok());
  // Interleaving across tags is ignored; same-tag order is not.
  EXPECT_TRUE(EquivalentModuloInterleave(*a->root, *b->root));
  EXPECT_FALSE(EquivalentModuloInterleave(*a->root, *c->root));
  auto d = xml::ParseDocument("<s x=\"1\"><a>1</a></s>");
  auto e = xml::ParseDocument("<s x=\"2\"><a>1</a></s>");
  EXPECT_FALSE(EquivalentModuloInterleave(*d->root, *e->root));
}

TEST(ReconstructTest, SigmodRoundTripsExactlyUnderBothMappings) {
  // The SIGMOD DTD uses only sequence content models, so reconstruction
  // restores the exact document.
  datagen::SigmodOptions opts;
  opts.documents = 25;
  auto corpus = datagen::SigmodGenerator(opts).GenerateCorpus();
  std::vector<const xml::Node*> docs;
  for (const auto& d : corpus) docs.push_back(d.get());
  for (Mapping mapping : {Mapping::kHybrid, Mapping::kXorator,
                          Mapping::kShared, Mapping::kPerElement}) {
    auto rebuilt = RoundTrip(datagen::kSigmodDtd, docs, mapping);
    ASSERT_TRUE(rebuilt.ok()) << rebuilt.status().ToString();
    ASSERT_EQ(rebuilt->size(), corpus.size());
    for (size_t i = 0; i < corpus.size(); ++i) {
      EXPECT_EQ(xml::Serialize(*(*rebuilt)[i]), xml::Serialize(*corpus[i]))
          << "mapping " << static_cast<int>(mapping) << " doc " << i;
    }
  }
}

TEST(ReconstructTest, ShakespeareRoundTripsModuloInterleave) {
  datagen::ShakespeareOptions opts;
  opts.plays = 3;
  auto corpus = datagen::ShakespeareGenerator(opts).GenerateCorpus();
  std::vector<const xml::Node*> docs;
  for (const auto& d : corpus) docs.push_back(d.get());
  for (Mapping mapping : {Mapping::kHybrid, Mapping::kXorator}) {
    auto rebuilt = RoundTrip(datagen::kShakespeareDtd, docs, mapping);
    ASSERT_TRUE(rebuilt.ok()) << rebuilt.status().ToString();
    ASSERT_EQ(rebuilt->size(), corpus.size());
    for (size_t i = 0; i < corpus.size(); ++i) {
      EXPECT_TRUE(EquivalentModuloInterleave(*(*rebuilt)[i], *corpus[i]))
          << "mapping " << static_cast<int>(mapping) << " play " << i;
    }
  }
}

TEST(ReconstructTest, XoratorFragmentsRoundTripInterleaveExactly) {
  // Fragments stored in XADT columns keep full interleaving: a speech's
  // LINE children, including embedded STAGEDIRs, come back verbatim.
  datagen::ShakespeareOptions opts;
  opts.plays = 2;
  auto corpus = datagen::ShakespeareGenerator(opts).GenerateCorpus();
  std::vector<const xml::Node*> docs;
  for (const auto& d : corpus) docs.push_back(d.get());
  auto rebuilt = RoundTrip(datagen::kShakespeareDtd, docs, Mapping::kXorator);
  ASSERT_TRUE(rebuilt.ok());
  // Compare the serialized LINE subtrees of every speech, in order.
  auto collect_lines = [](const xml::Node& root) {
    std::vector<std::string> out;
    std::function<void(const xml::Node&)> walk = [&](const xml::Node& n) {
      if (n.name() == "LINE") out.push_back(xml::Serialize(n));
      for (const auto& c : n.children()) {
        if (c->is_element()) walk(*c);
      }
    };
    walk(root);
    return out;
  };
  for (size_t i = 0; i < corpus.size(); ++i) {
    EXPECT_EQ(collect_lines(*(*rebuilt)[i]), collect_lines(*corpus[i]))
        << "play " << i;
  }
}

TEST(ReconstructTest, RandomizedDocsRoundTrip) {
  auto dtd = xml::ParseDtd(datagen::kPlaysDtd);
  ASSERT_TRUE(dtd.ok());
  for (uint64_t seed = 1; seed <= 6; ++seed) {
    datagen::RandomDocOptions opts;
    opts.seed = seed;
    opts.max_repeat = 3;
    datagen::RandomDocGenerator gen(&*dtd, opts);
    std::vector<std::unique_ptr<xml::Node>> docs;
    for (int d = 0; d < 4; ++d) {
      auto doc = gen.Generate("PLAY");
      ASSERT_TRUE(doc.ok());
      docs.push_back(std::move(*doc));
    }
    std::vector<const xml::Node*> raw;
    for (const auto& d : docs) raw.push_back(d.get());
    for (Mapping mapping : {Mapping::kHybrid, Mapping::kXorator}) {
      auto rebuilt = RoundTrip(datagen::kPlaysDtd, raw, mapping);
      ASSERT_TRUE(rebuilt.ok()) << rebuilt.status().ToString();
      ASSERT_EQ(rebuilt->size(), docs.size()) << "seed " << seed;
      for (size_t i = 0; i < docs.size(); ++i) {
        EXPECT_TRUE(EquivalentModuloInterleave(*(*rebuilt)[i], *docs[i]))
            << "seed " << seed << " mapping " << static_cast<int>(mapping)
            << " doc " << i;
      }
    }
  }
}

TEST(ReconstructTest, EmptyDatabaseYieldsNoDocuments) {
  ExperimentOptions opts;
  opts.mapping = Mapping::kXorator;
  auto db = BuildExperimentDb(datagen::kPlaysDtd, {}, opts);
  ASSERT_TRUE(db.ok());
  auto dtd = xml::ParseDtd(datagen::kPlaysDtd);
  auto simplified = dtdgraph::Simplify(*dtd);
  Reconstructor reconstructor(db->db.get(), &db->schema, &*simplified);
  auto rebuilt = reconstructor.ReconstructAll();
  ASSERT_TRUE(rebuilt.ok());
  EXPECT_TRUE(rebuilt->empty());
}

}  // namespace
}  // namespace xorator::shred
