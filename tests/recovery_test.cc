#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <random>
#include <string>
#include <vector>

#include "benchutil/fixture.h"
#include "datagen/dtds.h"
#include "datagen/generators.h"
#include "ordb/database.h"
#include "ordb/page.h"
#include "ordb/wal.h"
#include "shred/loader.h"
#include "xml/dom.h"

namespace xorator {
namespace {

using ordb::Database;
using ordb::DbOptions;
using ordb::kPageSize;
using ordb::PageId;

/// Crash-recovery coverage: a database killed at a randomized point — with
/// the crash optionally tearing the log or the data file — must reopen to
/// exactly its last checkpoint, with every committed tuple queryable.

std::map<std::string, int64_t> TableCounts(Database* db,
                                           const mapping::MappedSchema& s) {
  std::map<std::string, int64_t> counts;
  for (const auto& t : s.tables) {
    auto r = db->Query("SELECT COUNT(*) AS n FROM " + t.name);
    counts[t.name] = r.ok() ? (*r).rows[0][0].AsInt() : -1;
  }
  return counts;
}

void AppendBytes(const std::string& path, size_t n, std::mt19937_64* rng) {
  std::ofstream f(path, std::ios::binary | std::ios::app);
  for (size_t i = 0; i < n; ++i) f.put(static_cast<char>((*rng)() % 256));
}

void ScribbleAt(const std::string& path, uint64_t offset, size_t n,
                std::mt19937_64* rng) {
  std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
  f.seekp(static_cast<std::streamoff>(offset));
  for (size_t i = 0; i < n; ++i) f.put(static_cast<char>((*rng)() % 256));
}

/// Page ids of the intact pre-image records in a WAL file.
std::vector<PageId> WalLoggedPages(const std::string& wal_path) {
  std::vector<PageId> pages;
  std::ifstream wal(wal_path, std::ios::binary);
  if (!wal) return pages;
  wal.seekg(16);  // header
  constexpr size_t kRecordBytes = 12 + kPageSize;
  std::vector<char> record(kRecordBytes);
  while (wal.read(record.data(), kRecordBytes)) {
    PageId id;
    std::memcpy(&id, record.data() + 4, 4);
    pages.push_back(id);
  }
  return pages;
}

class RecoveryTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    auto mapped = benchutil::MapDtd(datagen::kPlaysDtd,
                                    benchutil::Mapping::kXorator);
    ASSERT_TRUE(mapped.ok());
    schema_ = new mapping::MappedSchema(std::move(*mapped));
    // Big enough that a 12-frame pool must evict mid-epoch (which is what
    // populates the journal), small enough for 50+ trials.
    datagen::ShakespeareOptions opts;
    opts.plays = 6;
    opts.acts_per_play = 1;
    opts.scenes_per_act = 3;
    opts.speeches_per_scene = 12;
    opts.max_lines_per_speech = 5;
    corpus_ = new std::vector<std::unique_ptr<xml::Node>>(
        datagen::ShakespeareGenerator(opts).GenerateCorpus());
    for (const auto& d : *corpus_) docs_.push_back(d.get());
  }

  static void TearDownTestSuite() {
    delete corpus_;
    corpus_ = nullptr;
    delete schema_;
    schema_ = nullptr;
    docs_.clear();
  }

  std::string NewDbPath(const std::string& name) {
    std::string path = ::testing::TempDir() + "/" + name;
    std::remove(path.c_str());
    std::remove((path + ".wal").c_str());
    return path;
  }

  static mapping::MappedSchema* schema_;
  static std::vector<std::unique_ptr<xml::Node>>* corpus_;
  static std::vector<const xml::Node*> docs_;
};

mapping::MappedSchema* RecoveryTest::schema_ = nullptr;
std::vector<std::unique_ptr<xml::Node>>* RecoveryTest::corpus_ = nullptr;
std::vector<const xml::Node*> RecoveryTest::docs_;

TEST_F(RecoveryTest, CleanReopenPreservesDataAndIndexes) {
  const std::string path = NewDbPath("xorator_clean_reopen.db");
  std::map<std::string, int64_t> counts;
  std::string indexed_column;
  int64_t indexed_hits = 0;
  {
    DbOptions options;
    options.path = path;
    auto db = Database::Open(options);
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    shred::Loader loader(db->get(), schema_);
    ASSERT_TRUE(loader.CreateTables().ok());
    auto report = loader.Load(docs_);
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    EXPECT_EQ(report->documents, docs_.size());
    // Index an integer column of `speech` so the catalog round-trip covers
    // indexes too.
    const ordb::TableInfo* speech = (*db)->catalog()->FindTable("speech");
    ASSERT_NE(speech, nullptr);
    for (const auto& col : speech->schema.columns) {
      if (col.type == ordb::TypeId::kInteger) {
        indexed_column = col.name;
        break;
      }
    }
    ASSERT_FALSE(indexed_column.empty());
    ASSERT_TRUE((*db)->CreateIndex("speech", indexed_column).ok());
    counts = TableCounts(db->get(), *schema_);
    auto hits = (*db)->Query("SELECT COUNT(*) AS n FROM speech WHERE " +
                             indexed_column + " = 1");
    ASSERT_TRUE(hits.ok());
    indexed_hits = (*hits).rows[0][0].AsInt();
    ASSERT_TRUE((*db)->Close().ok());
  }
  DbOptions options;
  options.path = path;
  auto db = Database::Open(options);
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  EXPECT_EQ(TableCounts(db->get(), *schema_), counts);
  // The index came back with the catalog and still answers correctly.
  const ordb::TableInfo* speech = (*db)->catalog()->FindTable("speech");
  ASSERT_NE(speech, nullptr);
  EXPECT_NE(speech->FindIndex(indexed_column), nullptr);
  auto hits = (*db)->Query("SELECT COUNT(*) AS n FROM speech WHERE " +
                           indexed_column + " = 1");
  ASSERT_TRUE(hits.ok()) << hits.status().ToString();
  EXPECT_EQ((*hits).rows[0][0].AsInt(), indexed_hits);
  ASSERT_TRUE((*db)->Close().ok());
  std::remove(path.c_str());
  std::remove((path + ".wal").c_str());
}

TEST_F(RecoveryTest, FreshDatabaseSurvivesImmediateCrash) {
  const std::string path = NewDbPath("xorator_fresh_crash.db");
  {
    DbOptions options;
    options.path = path;
    auto db = Database::Open(options);
    ASSERT_TRUE(db.ok());
    // Mid-epoch DDL that never reaches a checkpoint.
    ASSERT_TRUE((*db)->Execute("CREATE TABLE t (a INTEGER)").ok());
    ASSERT_TRUE((*db)->Execute("INSERT INTO t VALUES (1), (2)").ok());
    (*db)->Kill();
  }
  DbOptions options;
  options.path = path;
  auto db = Database::Open(options);
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  // The table rolled back with the epoch: the committed state is the empty
  // catalog from Open's initial checkpoint.
  EXPECT_EQ((*db)->catalog()->FindTable("t"), nullptr);
  ASSERT_TRUE((*db)->Close().ok());
  std::remove(path.c_str());
  std::remove((path + ".wal").c_str());
}

// The headline requirement: >= 50 randomized crash points during a
// Shakespeare-fixture load. Each trial commits a random prefix of the
// corpus, keeps loading, crashes without checkpointing, then (randomly)
// tears the log tail, tears the data-file tail, scribbles over uncommitted
// pages, or scribbles over WAL-protected committed pages. Reopening must
// replay the journal and land exactly on the committed counts.
TEST_F(RecoveryTest, RandomizedCrashPoints) {
  const std::string path = NewDbPath("xorator_crash.db");
  const std::string wal_path = path + ".wal";
  int trials_with_wal_records = 0;
  int trials_with_restores = 0;
  for (int trial = 0; trial < 56; ++trial) {
    SCOPED_TRACE("trial " + std::to_string(trial));
    std::mt19937_64 rng(1000 + trial);
    std::remove(path.c_str());
    std::remove(wal_path.c_str());
    std::map<std::string, int64_t> committed;
    uint64_t committed_bytes = 0;
    {
      DbOptions options;
      options.path = path;
      options.buffer_pool_pages = 6;  // force mid-epoch write-backs
      auto db = Database::Open(options);
      ASSERT_TRUE(db.ok()) << db.status().ToString();
      shred::Loader loader(db->get(), schema_);
      ASSERT_TRUE(loader.CreateTables().ok());
      size_t committed_docs = 1 + rng() % 3;
      std::vector<const xml::Node*> batch(docs_.begin(),
                                          docs_.begin() + committed_docs);
      auto report = loader.Load(batch);
      ASSERT_TRUE(report.ok()) << report.status().ToString();
      ASSERT_TRUE((*db)->Checkpoint().ok());
      committed = TableCounts(db->get(), *schema_);
      committed_bytes = std::filesystem::file_size(path);
      // Keep loading past the checkpoint; none of this may survive.
      size_t extra = 1 + rng() % 3;
      std::vector<const xml::Node*> tail(
          docs_.begin() + committed_docs,
          docs_.begin() + committed_docs + extra);
      auto report2 = loader.Load(tail);
      ASSERT_TRUE(report2.ok()) << report2.status().ToString();
      if ((*db)->wal()->records_logged() > 0) ++trials_with_wal_records;
      (*db)->Kill();
    }
    // Post-crash damage, as a torn power-loss would leave it.
    switch (rng() % 5) {
      case 0:
        break;  // plain crash
      case 1:  // crash mid-append of a journal record
        AppendBytes(wal_path, 1 + rng() % 9000, &rng);
        break;
      case 2:  // torn final data-file write (unaligned tail)
        AppendBytes(path, 1 + rng() % (kPageSize + 100), &rng);
        break;
      case 3: {  // torn writes inside the uncommitted region
        uint64_t size = std::filesystem::file_size(path);
        if (size > committed_bytes) {
          uint64_t offset =
              committed_bytes + rng() % (size - committed_bytes);
          ScribbleAt(path, offset, 1 + rng() % 512, &rng);
        }
        break;
      }
      case 4: {  // torn writes over committed pages the journal protects
        std::vector<PageId> logged = WalLoggedPages(wal_path);
        if (!logged.empty()) {
          PageId victim = logged[rng() % logged.size()];
          ScribbleAt(path, static_cast<uint64_t>(victim) * kPageSize,
                     1 + rng() % kPageSize, &rng);
          ++trials_with_restores;
        }
        break;
      }
    }
    DbOptions options;
    options.path = path;
    auto db = Database::Open(options);
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    EXPECT_EQ(TableCounts(db->get(), *schema_), committed);
    auto q = (*db)->Query("SELECT COUNT(*) AS n FROM speech");
    ASSERT_TRUE(q.ok()) << q.status().ToString();
    EXPECT_EQ((*q).rows[0][0].AsInt(), committed["speech"]);
    ASSERT_TRUE((*db)->Close().ok());
  }
  // The harness actually exercised the journal, not just truncation.
  EXPECT_GT(trials_with_wal_records, 0);
  EXPECT_GT(trials_with_restores, 0);
  std::remove(path.c_str());
  std::remove(wal_path.c_str());
}

// Crash points driven by the fault injector: the disk "dies" after a
// seeded number of writes mid-load. Whatever checkpoint last returned OK
// is the state that must come back.
TEST_F(RecoveryTest, InjectedDiskLossRollsBackToLastGoodCheckpoint) {
  const std::string path = NewDbPath("xorator_diskloss.db");
  const std::string wal_path = path + ".wal";
  for (int trial = 0; trial < 12; ++trial) {
    SCOPED_TRACE("trial " + std::to_string(trial));
    std::mt19937_64 rng(77 + trial);
    std::remove(path.c_str());
    std::remove(wal_path.c_str());
    std::map<std::string, int64_t> committed;
    {  // Phase A: a healthy committed prefix.
      DbOptions options;
      options.path = path;
      options.buffer_pool_pages = 12;
      auto db = Database::Open(options);
      ASSERT_TRUE(db.ok());
      shred::Loader loader(db->get(), schema_);
      ASSERT_TRUE(loader.CreateTables().ok());
      std::vector<const xml::Node*> batch(docs_.begin(), docs_.begin() + 2);
      ASSERT_TRUE(loader.Load(batch).ok());
      ASSERT_TRUE((*db)->Close().ok());
    }
    {  // Phase B: the disk dies after a random number of writes.
      DbOptions options;
      options.path = path;
      options.buffer_pool_pages = 12;
      ordb::FaultOptions fault;
      fault.seed = rng();
      fault.fail_after_writes = static_cast<int64_t>(rng() % 40);
      options.fault = fault;
      auto db = Database::Open(options);
      if (db.ok()) {
        shred::Loader loader(db->get(), schema_);
        committed = TableCounts(db->get(), *schema_);
        std::vector<const xml::Node*> tail(docs_.begin() + 2,
                                           docs_.begin() + 4);
        shred::LoadOptions load_options;
        load_options.stop_on_error = true;
        XO_DISCARD_STATUS(loader.Load(tail, load_options),
                          "the injected disk failure may kill the load at any "
                          "point; the invariant under test is what Open() "
                          "recovers afterwards, not whether this load survived");
        std::map<std::string, int64_t> current =
            TableCounts(db->get(), *schema_);
        if ((*db)->Checkpoint().ok()) committed = current;
        (*db)->Kill();
      } else {
        // The disk died during Open's own recovery/checkpoint: the phase-A
        // state must still be intact.
        DbOptions clean;
        clean.path = path;
        auto reopened = Database::Open(clean);
        ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
        committed = TableCounts(reopened->get(), *schema_);
        ASSERT_TRUE((*reopened)->Close().ok());
      }
    }
    DbOptions options;
    options.path = path;
    auto db = Database::Open(options);
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    EXPECT_EQ(TableCounts(db->get(), *schema_), committed);
    ASSERT_TRUE((*db)->Close().ok());
  }
  std::remove(path.c_str());
  std::remove(wal_path.c_str());
}

TEST_F(RecoveryTest, RecoveryIsIdempotent) {
  const std::string path = NewDbPath("xorator_idempotent.db");
  const std::string wal_path = path + ".wal";
  std::map<std::string, int64_t> committed;
  {
    DbOptions options;
    options.path = path;
    options.buffer_pool_pages = 12;
    auto db = Database::Open(options);
    ASSERT_TRUE(db.ok());
    shred::Loader loader(db->get(), schema_);
    ASSERT_TRUE(loader.CreateTables().ok());
    std::vector<const xml::Node*> batch(docs_.begin(), docs_.begin() + 2);
    ASSERT_TRUE(loader.Load(batch).ok());
    ASSERT_TRUE((*db)->Checkpoint().ok());
    committed = TableCounts(db->get(), *schema_);
    std::vector<const xml::Node*> tail(docs_.begin() + 2, docs_.begin() + 4);
    ASSERT_TRUE(loader.Load(tail).ok());
    (*db)->Kill();
  }
  // Recover explicitly, twice: re-applying the same pre-images must be a
  // no-op (Open below runs it a third time).
  auto first = ordb::RecoverFromWal(path, wal_path);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_TRUE(first->recovered);
  auto second = ordb::RecoverFromWal(path, wal_path);
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  EXPECT_EQ(second->pages_restored, first->pages_restored);
  EXPECT_EQ(second->page_count, first->page_count);
  DbOptions options;
  options.path = path;
  auto db = Database::Open(options);
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  EXPECT_EQ(TableCounts(db->get(), *schema_), committed);
  ASSERT_TRUE((*db)->Close().ok());
  std::remove(path.c_str());
  std::remove(wal_path.c_str());
}

TEST_F(RecoveryTest, SilentCommittedCorruptionIsDetectedNotCrashed) {
  const std::string path = NewDbPath("xorator_bitrot.db");
  {
    DbOptions options;
    options.path = path;
    auto db = Database::Open(options);
    ASSERT_TRUE(db.ok());
    shred::Loader loader(db->get(), schema_);
    ASSERT_TRUE(loader.CreateTables().ok());
    std::vector<const xml::Node*> batch(docs_.begin(), docs_.begin() + 2);
    ASSERT_TRUE(loader.Load(batch).ok());
    ASSERT_TRUE((*db)->Close().ok());
  }
  // Bit rot in the committed region: no journal record covers it, so
  // recovery cannot heal it — but every read must fail with a clean
  // kCorruption, never crash or return garbage rows.
  const uint64_t pages = std::filesystem::file_size(path) / kPageSize;
  ASSERT_GT(pages, 1u);
  std::mt19937_64 rng(5);
  for (uint64_t p = 1; p < pages; ++p) {  // spare the catalog on page 0
    uint64_t offset = p * kPageSize + 100 + rng() % (kPageSize - 200);
    std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
    f.seekg(static_cast<std::streamoff>(offset));
    char byte = static_cast<char>(f.get());
    f.seekp(static_cast<std::streamoff>(offset));
    f.put(static_cast<char>(byte ^ 0x10));
  }
  DbOptions options;
  options.path = path;
  auto db = Database::Open(options);
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  int corruption_errors = 0;
  for (const auto& t : schema_->tables) {
    auto r = (*db)->Query("SELECT COUNT(*) AS n FROM " + t.name);
    if (!r.ok()) {
      EXPECT_EQ(r.status().code(), StatusCode::kCorruption)
          << t.name << ": " << r.status().ToString();
      ++corruption_errors;
    }
  }
  EXPECT_GT(corruption_errors, 0);
  EXPECT_GT((*db)->buffer_pool()->stats().checksum_failures, 0u);
  (*db)->Kill();  // a checkpoint over poisoned pages is pointless
  std::remove(path.c_str());
  std::remove((path + ".wal").c_str());
}

// The incremental scrubber (DESIGN.md §13) walks the file in budgeted
// slices, finds committed bit rot that no query has touched yet, and
// quarantines it — turning latent corruption into contained, observable
// degradation before a reader trips over it.
TEST_F(RecoveryTest, ScrubberFindsCommittedBitRotIncrementally) {
  const std::string path = NewDbPath("xorator_scrub_rot.db");
  {
    DbOptions options;
    options.path = path;
    auto db = Database::Open(options);
    ASSERT_TRUE(db.ok());
    shred::Loader loader(db->get(), schema_);
    ASSERT_TRUE(loader.CreateTables().ok());
    std::vector<const xml::Node*> batch(docs_.begin(), docs_.begin() + 2);
    ASSERT_TRUE(loader.Load(batch).ok());
    ASSERT_TRUE((*db)->Close().ok());
  }
  const uint64_t pages = std::filesystem::file_size(path) / kPageSize;
  ASSERT_GT(pages, 2u);
  const PageId victim = static_cast<PageId>(pages / 2);  // never the meta page
  {  // deterministic single-bit rot, far from the page header
    const uint64_t offset = static_cast<uint64_t>(victim) * kPageSize + 300;
    std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
    f.seekg(static_cast<std::streamoff>(offset));
    char byte = static_cast<char>(f.get());
    f.seekp(static_cast<std::streamoff>(offset));
    f.put(static_cast<char>(byte ^ 0x10));
  }
  DbOptions options;
  options.path = path;
  auto db = Database::Open(options);
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  // Walk the whole file in 3-page slices; the cursor persists across calls.
  uint64_t bad_total = 0;
  int slices = 0;
  for (;; ++slices) {
    ASSERT_LT(slices, 10000);  // the cursor must make progress
    auto report = (*db)->Scrub(3);
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    bad_total += report->pages_bad;
    if (report->wrapped) break;
  }
  EXPECT_GT(slices, 1);  // genuinely incremental, not one big pass
  EXPECT_EQ(bad_total, 1u);
  EXPECT_TRUE((*db)->buffer_pool()->IsQuarantined(victim));
  EXPECT_EQ((*db)->health()->state(), ordb::HealthState::kDegraded);
  const ordb::BufferPoolStats stats = (*db)->buffer_pool()->stats();
  EXPECT_EQ(stats.scrub_pages_bad, 1u);
  EXPECT_EQ(stats.scrub_passes, 1u);
  EXPECT_GE(stats.scrub_pages_scanned, pages);
  // A second full pass re-reports the quarantined page as bad (from the
  // quarantine set, without re-reading it) and bumps the pass counter.
  auto second = (*db)->Scrub(100000);
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  EXPECT_TRUE(second->wrapped);
  EXPECT_EQ(second->pages_bad, 1u);
  EXPECT_EQ((*db)->buffer_pool()->stats().scrub_passes, 2u);
  (*db)->Kill();  // checkpointing over poisoned pages is pointless
  std::remove(path.c_str());
  std::remove((path + ".wal").c_str());
}

// The scrubber is paced by the thread's bound QueryGuard like any other
// scan: a cancelled (or expired) guard unwinds the slice cleanly.
TEST_F(RecoveryTest, ScrubSliceHonorsTheBoundGuard) {
  DbOptions options;  // memory-backed: pacing is independent of the pager
  auto db = Database::Open(options);
  ASSERT_TRUE(db.ok());
  ASSERT_TRUE((*db)->Execute("CREATE TABLE t (a INTEGER)").ok());
  ASSERT_TRUE((*db)->Execute("INSERT INTO t VALUES (1), (2), (3)").ok());
  ASSERT_TRUE((*db)->Checkpoint().ok());
  {
    ordb::QueryGuard guard(0, 0);
    guard.Cancel();
    ordb::ScopedGuardBind bind(&guard);
    auto paced = (*db)->buffer_pool()->ScrubSlice(1000);
    ASSERT_FALSE(paced.ok());
    EXPECT_EQ(paced.status().code(), StatusCode::kCancelled);
  }
  // Unbound again, the same slice runs to completion.
  auto free_run = (*db)->buffer_pool()->ScrubSlice(1000);
  ASSERT_TRUE(free_run.ok()) << free_run.status().ToString();
  EXPECT_TRUE(free_run->wrapped);
  EXPECT_EQ(free_run->pages_bad, 0u);
  ASSERT_TRUE((*db)->Close().ok());
}

TEST_F(RecoveryTest, FailedOpenLeavesTheFileUntouched) {
  const std::string path = NewDbPath("xorator_failed_open.db");
  {
    DbOptions options;
    options.path = path;
    auto db = Database::Open(options);
    ASSERT_TRUE(db.ok());
    shred::Loader loader(db->get(), schema_);
    ASSERT_TRUE(loader.CreateTables().ok());
    std::vector<const xml::Node*> batch(docs_.begin(), docs_.begin() + 1);
    ASSERT_TRUE(loader.Load(batch).ok());
    ASSERT_TRUE((*db)->Close().ok());
  }
  // Break the catalog magic but restamp the page checksum, so the open
  // fails at LoadCatalog rather than at the checksum gate.
  {
    std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
    std::vector<char> page(kPageSize);
    f.read(page.data(), kPageSize);
    std::memset(page.data() + ordb::kPageHeaderBytes, 0xEE, 4);
    ordb::SetPageChecksum(page.data());
    f.seekp(0);
    f.write(page.data(), kPageSize);
  }
  std::ifstream before_f(path, std::ios::binary);
  const std::string before((std::istreambuf_iterator<char>(before_f)),
                           std::istreambuf_iterator<char>());
  before_f.close();
  DbOptions options;
  options.path = path;
  auto db = Database::Open(options);
  ASSERT_FALSE(db.ok());
  EXPECT_EQ(db.status().code(), StatusCode::kCorruption)
      << db.status().ToString();
  // The failed open must not have rewritten the meta page or any other
  // byte: the on-disk state is the evidence a repair tool would need.
  std::ifstream after_f(path, std::ios::binary);
  const std::string after((std::istreambuf_iterator<char>(after_f)),
                          std::istreambuf_iterator<char>());
  EXPECT_EQ(before, after);
  std::remove(path.c_str());
  std::remove((path + ".wal").c_str());
}

}  // namespace
}  // namespace xorator
