#include <gtest/gtest.h>

#include <random>

#include "benchutil/fixture.h"
#include "datagen/dtds.h"
#include "datagen/generators.h"
#include "ordb/database.h"
#include "xadt/functions.h"
#include "xadt/xadt.h"
#include "xml/parser.h"
#include "xml/serializer.h"

namespace xorator {
namespace {

using ordb::Database;
using ordb::DbOptions;
using ordb::TableSchema;
using ordb::Tuple;
using ordb::TypeId;
using ordb::Value;

/// Failure-injection and malformed-input coverage: everything here must
/// return a clean Status (or a well-defined result), never crash.

std::unique_ptr<Database> OpenDb() {
  auto db = Database::Open({});
  EXPECT_TRUE(db.ok());
  EXPECT_TRUE(xadt::RegisterXadtFunctions(db.value()->functions()).ok());
  return std::move(*db);
}

TEST(SqlRobustnessTest, GarbageStatementsReturnErrors) {
  auto db = OpenDb();
  for (const char* sql : {
           "", ";", "SELECT", "SELEC * FROM t", "SELECT ** FROM t",
           "SELECT a FROM t WHERE (a = 1", "SELECT a FROM t GROUP",
           "CREATE TABLE", "CREATE TABLE t (a BLOB)",
           "INSERT INTO t VALUES", "DELETE", "DELETE FROM",
           "SELECT a FROM t ORDER", "SELECT a FROM t LIMIT x",
           "SELECT a FROM t WHERE b IS", "\0x01\x02",
       }) {
    auto r = db->Query(sql);
    EXPECT_FALSE(r.ok()) << "should fail: " << sql;
  }
}

TEST(SqlRobustnessTest, DeepNestedParensDoNotOverflow) {
  auto db = OpenDb();
  ASSERT_TRUE(db->Execute("CREATE TABLE t (a INTEGER)").ok());
  std::string sql = "SELECT a FROM t WHERE ";
  for (int i = 0; i < 200; ++i) sql += "(";
  sql += "a = 1";
  for (int i = 0; i < 200; ++i) sql += ")";
  auto r = db->Query(sql);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
}

TEST(SqlRobustnessTest, VeryLongStringLiteral) {
  auto db = OpenDb();
  ASSERT_TRUE(db->Execute("CREATE TABLE t (a VARCHAR)").ok());
  std::string big(200000, 'x');
  ASSERT_TRUE(db->Execute("INSERT INTO t VALUES ('" + big + "')").ok());
  auto r = db->Query("SELECT length(a) AS n FROM t");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->rows[0][0].AsInt(), 200000);
}

TEST(SqlRobustnessTest, DeleteStatements) {
  auto db = OpenDb();
  ASSERT_TRUE(db->Execute("CREATE TABLE t (a INTEGER, b VARCHAR)").ok());
  ASSERT_TRUE(db->Execute("CREATE INDEX i ON t (a)").ok());
  ASSERT_TRUE(db->Execute("INSERT INTO t VALUES (1, 'x'), (2, 'y'), "
                          "(3, 'x'), (4, 'z')")
                  .ok());
  auto deleted = db->Query("DELETE FROM t WHERE b = 'x'");
  ASSERT_TRUE(deleted.ok()) << deleted.status().ToString();
  EXPECT_EQ(deleted->rows[0][0].AsInt(), 2);
  auto rest = db->Query("SELECT COUNT(*) AS n FROM t");
  EXPECT_EQ(rest->rows[0][0].AsInt(), 2);
  // The index no longer returns deleted rows.
  auto via_index = db->Query("SELECT b FROM t WHERE a = 1");
  ASSERT_TRUE(via_index.ok());
  EXPECT_TRUE(via_index->rows.empty());
  // Delete everything.
  auto all = db->Query("DELETE FROM t");
  EXPECT_EQ(all->rows[0][0].AsInt(), 2);
  EXPECT_EQ(db->Query("SELECT COUNT(*) AS n FROM t")->rows[0][0].AsInt(), 0);
  // Delete from a missing table fails cleanly.
  EXPECT_FALSE(db->Query("DELETE FROM missing").ok());
}

TEST(XadtRobustnessTest, CorruptXadtBytesThroughSql) {
  auto db = OpenDb();
  ASSERT_TRUE(db->Execute("CREATE TABLE t (x XADT)").ok());
  // Insert syntactically-XML-looking garbage and binary junk through the
  // engine's direct path (bypassing the raw-text INSERT conversion).
  TableSchema schema;
  schema.columns = {{"x", TypeId::kXadt}};
  std::vector<Tuple> rows;
  rows.push_back({Value::Xadt("Zgarbage-marker")});
  rows.push_back({Value::Xadt("R<a><unclosed>")});
  rows.push_back({Value::Xadt(std::string("C\x05\x01", 3))});
  rows.push_back({Value::Xadt("")});
  ASSERT_TRUE(db->BulkInsert("t", rows).ok());
  // Every XADT method surfaces a clean error (or a clean result for the
  // empty value), never a crash.
  for (const char* sql : {
           "SELECT xadtToXml(x) FROM t",
           "SELECT findKeyInElm(x, 'a', 'k') FROM t",
           "SELECT getElm(x, 'a', '', '') FROM t",
           "SELECT getElmIndex(x, '', 'a', 1, 1) FROM t",
           "SELECT u.out FROM t, table(unnest(x, 'a')) u",
       }) {
    auto r = db->Query(sql);
    EXPECT_FALSE(r.ok()) << sql << " should propagate the decode error";
  }
  // Restricting to the empty value succeeds.
  ASSERT_TRUE(db->Execute("DELETE FROM t").ok());
  ASSERT_TRUE(db->BulkInsert("t", {{Value::Xadt("")}}).ok());
  auto ok = db->Query("SELECT findKeyInElm(x, 'a', 'k') AS f FROM t");
  ASSERT_TRUE(ok.ok()) << ok.status().ToString();
  EXPECT_EQ(ok->rows[0][0].AsInt(), 0);
}

TEST(XadtRobustnessTest, RandomByteFuzzNeverCrashes) {
  std::mt19937_64 rng(99);
  for (int i = 0; i < 2000; ++i) {
    size_t len = rng() % 64;
    std::string bytes;
    for (size_t b = 0; b < len; ++b) {
      bytes.push_back(static_cast<char>(rng() % 256));
    }
    // Bias some inputs toward valid markers to reach deeper code.
    if (i % 3 == 0 && !bytes.empty()) bytes[0] = 'R';
    if (i % 3 == 1 && !bytes.empty()) bytes[0] = 'C';
    if (i % 7 == 0 && !bytes.empty()) bytes[0] = 'D';
    (void)xadt::ToXmlString(bytes);
    (void)xadt::TextContent(bytes);
    (void)xadt::FindKeyInElm(bytes, "a", "b");
    (void)xadt::GetElm(bytes, "a", "b", "c");
    (void)xadt::GetElmIndex(bytes, "", "a", 1, 2);
    (void)xadt::Unnest(bytes, "a");
  }
  SUCCEED();
}

TEST(XmlRobustnessTest, RandomMutationFuzzNeverCrashes) {
  // Start from a valid document and flip bytes.
  datagen::ShakespeareOptions opts;
  opts.plays = 1;
  opts.acts_per_play = 1;
  auto play = datagen::ShakespeareGenerator(opts).GeneratePlay(0);
  std::string text = xml::Serialize(*play);
  std::mt19937_64 rng(7);
  for (int i = 0; i < 300; ++i) {
    std::string mutated = text;
    int flips = 1 + static_cast<int>(rng() % 8);
    for (int f = 0; f < flips; ++f) {
      mutated[rng() % mutated.size()] = static_cast<char>(rng() % 256);
    }
    (void)xml::ParseDocument(mutated);  // must not crash
  }
  SUCCEED();
}

TEST(LoaderRobustnessTest, NonConformingDocumentStillLoads) {
  // The shredder is driven by the mapping, not by validation: unexpected
  // elements recurse harmlessly, missing ones stay NULL.
  auto schema = benchutil::MapDtd(datagen::kPlaysDtd,
                                  benchutil::Mapping::kXorator);
  ASSERT_TRUE(schema.ok());
  auto db = OpenDb();
  shred::Loader loader(db.get(), &*schema);
  ASSERT_TRUE(loader.CreateTables().ok());
  auto doc = xml::ParseDocument(
      "<PLAY><UNKNOWN>stray</UNKNOWN><ACT><SPEECH><SPEAKER>s</SPEAKER>"
      "</SPEECH></ACT></PLAY>");
  ASSERT_TRUE(doc.ok());
  auto report = loader.Load({doc->root.get()});
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  auto r = db->Query("SELECT COUNT(*) AS n FROM speech");
  EXPECT_EQ(r->rows[0][0].AsInt(), 1);
}

TEST(EngineRobustnessTest, BufferPoolSmallerThanWorkload) {
  DbOptions options;
  options.path = ::testing::TempDir() + "/xorator_tiny_pool.db";
  std::remove(options.path.c_str());
  options.buffer_pool_pages = 8;  // absurdly small
  auto db = Database::Open(options);
  ASSERT_TRUE(db.ok());
  ASSERT_TRUE((*db)->Execute("CREATE TABLE t (a INTEGER, b VARCHAR)").ok());
  std::vector<Tuple> rows;
  for (int i = 0; i < 2000; ++i) {
    rows.push_back({Value::Int(i), Value::Varchar(std::string(100, 'b'))});
  }
  ASSERT_TRUE((*db)->BulkInsert("t", rows).ok());
  ASSERT_TRUE((*db)->Execute("CREATE INDEX i ON t (a)").ok());
  auto r = (*db)->Query("SELECT b FROM t WHERE a = 1234");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->rows.size(), 1u);
  EXPECT_GT((*db)->buffer_pool()->stats().evictions, 0u);
  std::remove(options.path.c_str());
}

TEST(EngineRobustnessTest, SelfJoinUsesDistinctAliases) {
  auto db = OpenDb();
  ASSERT_TRUE(db->Execute("CREATE TABLE n (id INTEGER, parent INTEGER)").ok());
  ASSERT_TRUE(db->Execute("INSERT INTO n VALUES (1, 0), (2, 1), (3, 1), "
                          "(4, 2)")
                  .ok());
  auto r = db->Query(
      "SELECT child.id FROM n AS parent, n AS child "
      "WHERE child.parent = parent.id AND parent.parent = 0");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->rows.size(), 2u);  // children of node 1
}

TEST(EngineRobustnessTest, NullHeavyData) {
  auto db = OpenDb();
  ASSERT_TRUE(db->Execute("CREATE TABLE t (a INTEGER, b VARCHAR)").ok());
  ASSERT_TRUE(db->Execute("INSERT INTO t VALUES (NULL, NULL), (1, NULL), "
                          "(NULL, 'x')")
                  .ok());
  EXPECT_EQ(db->Query("SELECT COUNT(*) AS n FROM t WHERE a IS NULL")
                ->rows[0][0]
                .AsInt(),
            2);
  EXPECT_EQ(db->Query("SELECT COUNT(b) AS n FROM t")->rows[0][0].AsInt(), 1);
  // NULL never satisfies comparisons.
  EXPECT_EQ(db->Query("SELECT COUNT(*) AS n FROM t WHERE a = 1")
                ->rows[0][0]
                .AsInt(),
            1);
  EXPECT_EQ(db->Query("SELECT COUNT(*) AS n FROM t WHERE a <> 1")
                ->rows[0][0]
                .AsInt(),
            0);
  // Sorting with nulls is stable and total.
  auto sorted = db->Query("SELECT a FROM t ORDER BY a");
  ASSERT_TRUE(sorted.ok());
  EXPECT_TRUE(sorted->rows[0][0].is_null());
}

}  // namespace
}  // namespace xorator
