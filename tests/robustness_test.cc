#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <fstream>
#include <random>
#include <thread>

#include "benchutil/fixture.h"
#include "datagen/dtds.h"
#include "datagen/generators.h"
#include "ordb/bptree.h"
#include "ordb/buffer_pool.h"
#include "ordb/database.h"
#include "ordb/fault_pager.h"
#include "ordb/heap_file.h"
#include "ordb/page.h"
#include "ordb/query_guard.h"
#include "shred/loader.h"
#include "xadt/functions.h"
#include "xadt/xadt.h"
#include "xml/parser.h"
#include "xml/serializer.h"

namespace xorator {
namespace {

using ordb::Database;
using ordb::DbOptions;
using ordb::TableSchema;
using ordb::Tuple;
using ordb::TypeId;
using ordb::Value;

/// Failure-injection and malformed-input coverage: everything here must
/// return a clean Status (or a well-defined result), never crash.

std::unique_ptr<Database> OpenDb() {
  auto db = Database::Open({});
  EXPECT_TRUE(db.ok());
  EXPECT_TRUE(xadt::RegisterXadtFunctions(db.value()->functions()).ok());
  return std::move(*db);
}

TEST(SqlRobustnessTest, GarbageStatementsReturnErrors) {
  auto db = OpenDb();
  for (const char* sql : {
           "", ";", "SELECT", "SELEC * FROM t", "SELECT ** FROM t",
           "SELECT a FROM t WHERE (a = 1", "SELECT a FROM t GROUP",
           "CREATE TABLE", "CREATE TABLE t (a BLOB)",
           "INSERT INTO t VALUES", "DELETE", "DELETE FROM",
           "SELECT a FROM t ORDER", "SELECT a FROM t LIMIT x",
           "SELECT a FROM t WHERE b IS", "\0x01\x02",
       }) {
    auto r = db->Query(sql);
    EXPECT_FALSE(r.ok()) << "should fail: " << sql;
  }
}

TEST(SqlRobustnessTest, DeepNestedParensDoNotOverflow) {
  auto db = OpenDb();
  ASSERT_TRUE(db->Execute("CREATE TABLE t (a INTEGER)").ok());
  std::string sql = "SELECT a FROM t WHERE ";
  for (int i = 0; i < 200; ++i) sql += "(";
  sql += "a = 1";
  for (int i = 0; i < 200; ++i) sql += ")";
  auto r = db->Query(sql);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
}

TEST(SqlRobustnessTest, VeryLongStringLiteral) {
  auto db = OpenDb();
  ASSERT_TRUE(db->Execute("CREATE TABLE t (a VARCHAR)").ok());
  std::string big(200000, 'x');
  ASSERT_TRUE(db->Execute("INSERT INTO t VALUES ('" + big + "')").ok());
  auto r = db->Query("SELECT length(a) AS n FROM t");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->rows[0][0].AsInt(), 200000);
}

TEST(SqlRobustnessTest, DeleteStatements) {
  auto db = OpenDb();
  ASSERT_TRUE(db->Execute("CREATE TABLE t (a INTEGER, b VARCHAR)").ok());
  ASSERT_TRUE(db->Execute("CREATE INDEX i ON t (a)").ok());
  ASSERT_TRUE(db->Execute("INSERT INTO t VALUES (1, 'x'), (2, 'y'), "
                          "(3, 'x'), (4, 'z')")
                  .ok());
  auto deleted = db->Query("DELETE FROM t WHERE b = 'x'");
  ASSERT_TRUE(deleted.ok()) << deleted.status().ToString();
  EXPECT_EQ(deleted->rows[0][0].AsInt(), 2);
  auto rest = db->Query("SELECT COUNT(*) AS n FROM t");
  EXPECT_EQ(rest->rows[0][0].AsInt(), 2);
  // The index no longer returns deleted rows.
  auto via_index = db->Query("SELECT b FROM t WHERE a = 1");
  ASSERT_TRUE(via_index.ok());
  EXPECT_TRUE(via_index->rows.empty());
  // Delete everything.
  auto all = db->Query("DELETE FROM t");
  EXPECT_EQ(all->rows[0][0].AsInt(), 2);
  EXPECT_EQ(db->Query("SELECT COUNT(*) AS n FROM t")->rows[0][0].AsInt(), 0);
  // Delete from a missing table fails cleanly.
  EXPECT_FALSE(db->Query("DELETE FROM missing").ok());
}

TEST(XadtRobustnessTest, CorruptXadtBytesThroughSql) {
  auto db = OpenDb();
  ASSERT_TRUE(db->Execute("CREATE TABLE t (x XADT)").ok());
  // Insert syntactically-XML-looking garbage and binary junk through the
  // engine's direct path (bypassing the raw-text INSERT conversion).
  TableSchema schema;
  schema.columns = {{"x", TypeId::kXadt}};
  std::vector<Tuple> rows;
  rows.push_back({Value::Xadt("Zgarbage-marker")});
  rows.push_back({Value::Xadt("R<a><unclosed>")});
  rows.push_back({Value::Xadt(std::string("C\x05\x01", 3))});
  rows.push_back({Value::Xadt("")});
  ASSERT_TRUE(db->BulkInsert("t", rows).ok());
  // Every XADT method surfaces a clean error (or a clean result for the
  // empty value), never a crash.
  for (const char* sql : {
           "SELECT xadtToXml(x) FROM t",
           "SELECT findKeyInElm(x, 'a', 'k') FROM t",
           "SELECT getElm(x, 'a', '', '') FROM t",
           "SELECT getElmIndex(x, '', 'a', 1, 1) FROM t",
           "SELECT u.out FROM t, table(unnest(x, 'a')) u",
       }) {
    auto r = db->Query(sql);
    EXPECT_FALSE(r.ok()) << sql << " should propagate the decode error";
  }
  // Restricting to the empty value succeeds.
  ASSERT_TRUE(db->Execute("DELETE FROM t").ok());
  ASSERT_TRUE(db->BulkInsert("t", {{Value::Xadt("")}}).ok());
  auto ok = db->Query("SELECT findKeyInElm(x, 'a', 'k') AS f FROM t");
  ASSERT_TRUE(ok.ok()) << ok.status().ToString();
  EXPECT_EQ(ok->rows[0][0].AsInt(), 0);
}

TEST(XadtRobustnessTest, RandomByteFuzzNeverCrashes) {
  std::mt19937_64 rng(99);
  for (int i = 0; i < 2000; ++i) {
    size_t len = rng() % 64;
    std::string bytes;
    for (size_t b = 0; b < len; ++b) {
      bytes.push_back(static_cast<char>(rng() % 256));
    }
    // Bias some inputs toward valid markers to reach deeper code.
    if (i % 3 == 0 && !bytes.empty()) bytes[0] = 'R';
    if (i % 3 == 1 && !bytes.empty()) bytes[0] = 'C';
    if (i % 7 == 0 && !bytes.empty()) bytes[0] = 'D';
    // Fuzzing only asserts "no crash": the status of each call is noise.
    XO_DISCARD_STATUS(xadt::ToXmlString(bytes), "fuzz input; errors expected");
    XO_DISCARD_STATUS(xadt::TextContent(bytes), "fuzz input; errors expected");
    XO_DISCARD_STATUS(xadt::FindKeyInElm(bytes, "a", "b"),
                      "fuzz input; errors expected");
    XO_DISCARD_STATUS(xadt::GetElm(bytes, "a", "b", "c"),
                      "fuzz input; errors expected");
    XO_DISCARD_STATUS(xadt::GetElmIndex(bytes, "", "a", 1, 2),
                      "fuzz input; errors expected");
    XO_DISCARD_STATUS(xadt::Unnest(bytes, "a"),
                      "fuzz input; errors expected");
  }
  SUCCEED();
}

TEST(XmlRobustnessTest, RandomMutationFuzzNeverCrashes) {
  // Start from a valid document and flip bytes.
  datagen::ShakespeareOptions opts;
  opts.plays = 1;
  opts.acts_per_play = 1;
  auto play = datagen::ShakespeareGenerator(opts).GeneratePlay(0);
  std::string text = xml::Serialize(*play);
  std::mt19937_64 rng(7);
  for (int i = 0; i < 300; ++i) {
    std::string mutated = text;
    int flips = 1 + static_cast<int>(rng() % 8);
    for (int f = 0; f < flips; ++f) {
      mutated[rng() % mutated.size()] = static_cast<char>(rng() % 256);
    }
    XO_DISCARD_STATUS(xml::ParseDocument(mutated),
                      "mutated input; the test only asserts no crash");
  }
  SUCCEED();
}

TEST(LoaderRobustnessTest, NonConformingDocumentStillLoads) {
  // The shredder is driven by the mapping, not by validation: unexpected
  // elements recurse harmlessly, missing ones stay NULL.
  auto schema = benchutil::MapDtd(datagen::kPlaysDtd,
                                  benchutil::Mapping::kXorator);
  ASSERT_TRUE(schema.ok());
  auto db = OpenDb();
  shred::Loader loader(db.get(), &*schema);
  ASSERT_TRUE(loader.CreateTables().ok());
  auto doc = xml::ParseDocument(
      "<PLAY><UNKNOWN>stray</UNKNOWN><ACT><SPEECH><SPEAKER>s</SPEAKER>"
      "</SPEECH></ACT></PLAY>");
  ASSERT_TRUE(doc.ok());
  auto report = loader.Load({doc->root.get()});
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  auto r = db->Query("SELECT COUNT(*) AS n FROM speech");
  EXPECT_EQ(r->rows[0][0].AsInt(), 1);
}

TEST(EngineRobustnessTest, BufferPoolSmallerThanWorkload) {
  DbOptions options;
  options.path = ::testing::TempDir() + "/xorator_tiny_pool.db";
  std::remove(options.path.c_str());
  options.buffer_pool_pages = 8;  // absurdly small
  auto db = Database::Open(options);
  ASSERT_TRUE(db.ok());
  ASSERT_TRUE((*db)->Execute("CREATE TABLE t (a INTEGER, b VARCHAR)").ok());
  std::vector<Tuple> rows;
  for (int i = 0; i < 2000; ++i) {
    rows.push_back({Value::Int(i), Value::Varchar(std::string(100, 'b'))});
  }
  ASSERT_TRUE((*db)->BulkInsert("t", rows).ok());
  ASSERT_TRUE((*db)->Execute("CREATE INDEX i ON t (a)").ok());
  auto r = (*db)->Query("SELECT b FROM t WHERE a = 1234");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->rows.size(), 1u);
  EXPECT_GT((*db)->buffer_pool()->stats().evictions, 0u);
  std::remove(options.path.c_str());
}

// -- Fault injection (see src/ordb/fault_pager.h) ---------------------------

TEST(FaultInjectionTest, DeterministicGivenSeed) {
  // The same seed over the same operation sequence injects the same faults
  // at the same points.
  auto run = [](uint64_t seed) {
    ordb::FaultOptions fault;
    fault.seed = seed;
    fault.transient_rate = 0.3;
    fault.permanent_rate = 0.1;
    ordb::FaultInjectingPager pager(std::make_unique<ordb::MemoryPager>(),
                                    fault);
    std::vector<StatusCode> codes;
    char buf[ordb::kPageSize] = {};
    for (int i = 0; i < 200; ++i) {
      auto id = pager.Allocate();
      codes.push_back(id.status().code());
      if (!id.ok()) continue;
      codes.push_back(pager.Write(*id, buf).code());
      codes.push_back(pager.Read(*id, buf).code());
    }
    return std::make_pair(codes, pager.stats());
  };
  auto [codes_a, stats_a] = run(1234);
  auto [codes_b, stats_b] = run(1234);
  EXPECT_EQ(codes_a, codes_b);
  EXPECT_EQ(stats_a.transients, stats_b.transients);
  EXPECT_EQ(stats_a.permanents, stats_b.permanents);
  EXPECT_GT(stats_a.transients, 0u);
  EXPECT_GT(stats_a.permanents, 0u);
  auto [codes_c, stats_c] = run(4321);
  EXPECT_NE(codes_a, codes_c);  // a different seed is a different schedule
}

TEST(FaultInjectionTest, TransientScheduleCompletesViaRetry) {
  // A purely transient schedule is always survivable: the injector caps
  // consecutive transients below the pool's retry budget.
  DbOptions options;
  options.path = ::testing::TempDir() + "/xorator_transient.db";
  std::remove(options.path.c_str());
  std::remove((options.path + ".wal").c_str());
  options.buffer_pool_pages = 8;
  ordb::FaultOptions fault;
  fault.seed = 7;
  fault.transient_rate = 0.3;
  options.fault = fault;
  auto db = Database::Open(options);
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  ASSERT_TRUE((*db)->Execute("CREATE TABLE t (a INTEGER, b VARCHAR)").ok());
  std::vector<Tuple> rows;
  for (int i = 0; i < 500; ++i) {
    rows.push_back({Value::Int(i), Value::Varchar(std::string(80, 'f'))});
  }
  ASSERT_TRUE((*db)->BulkInsert("t", rows).ok());
  auto r = (*db)->Query("SELECT COUNT(*) AS n FROM t");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->rows[0][0].AsInt(), 500);
  ASSERT_TRUE((*db)->Checkpoint().ok());
  EXPECT_GT((*db)->fault_pager()->stats().transients, 0u);
  EXPECT_GT((*db)->buffer_pool()->stats().retries, 0u);
  ASSERT_TRUE((*db)->Close().ok());
  std::remove(options.path.c_str());
  std::remove((options.path + ".wal").c_str());
}

TEST(FaultInjectionTest, PermanentFaultsFailCleanlyNotCrash) {
  DbOptions options;
  options.path = ::testing::TempDir() + "/xorator_permanent.db";
  std::remove(options.path.c_str());
  std::remove((options.path + ".wal").c_str());
  options.buffer_pool_pages = 8;
  ordb::FaultOptions fault;
  fault.seed = 3;
  fault.permanent_rate = 0.05;
  options.fault = fault;
  auto db = Database::Open(options);
  if (!db.ok()) {
    // The schedule can kill Open's initial checkpoint — that too must be a
    // clean error.
    EXPECT_EQ(db.status().code(), StatusCode::kIOError);
    return;
  }
  ASSERT_TRUE((*db)->Execute("CREATE TABLE t (a INTEGER, b VARCHAR)").ok());
  int failures = 0;
  for (int batch = 0; batch < 40; ++batch) {
    std::vector<Tuple> rows;
    for (int i = 0; i < 100; ++i) {
      rows.push_back({Value::Int(i), Value::Varchar(std::string(80, 'p'))});
    }
    Status s = (*db)->BulkInsert("t", rows);
    if (!s.ok()) {
      EXPECT_TRUE(s.code() == StatusCode::kIOError ||
                  s.code() == StatusCode::kCorruption)
          << s.ToString();
      ++failures;
    }
    // However the operation died, every PageRef guard it created must have
    // released its pin on the way out.
    EXPECT_EQ((*db)->buffer_pool()->PinnedFrameCount(), 0u);
    Status q = (*db)->Query("SELECT COUNT(*) AS n FROM t").status();
    if (!q.ok()) {
      EXPECT_TRUE(q.code() == StatusCode::kIOError ||
                  q.code() == StatusCode::kCorruption)
          << q.ToString();
      ++failures;
    }
    EXPECT_EQ((*db)->buffer_pool()->PinnedFrameCount(), 0u);
  }
  EXPECT_GT(failures, 0);
  EXPECT_GT((*db)->fault_pager()->stats().permanents, 0u);
  (*db)->Kill();  // the destructor checkpoint would just fail again
  std::remove(options.path.c_str());
  std::remove((options.path + ".wal").c_str());
}

TEST(FaultInjectionTest, SilentBitFlipsAreCaughtByChecksum) {
  ordb::FaultOptions fault;
  fault.seed = 11;
  fault.bit_flip_rate = 1.0;  // every write flips one stored bit
  auto base = std::make_unique<ordb::MemoryPager>();
  ordb::FaultInjectingPager pager(std::move(base), fault);
  ordb::BufferPool pool(&pager, 1);  // capacity 1 forces eviction + re-read
  auto p0 = pool.Create();
  ASSERT_TRUE(p0.ok());
  const ordb::PageId id0 = p0->id();
  p0->data()[300] = 'd';
  ASSERT_TRUE(p0->Release().ok());
  auto p1 = pool.Create();  // evicts (and silently corrupts) p0
  ASSERT_TRUE(p1.ok());
  ASSERT_TRUE(p1->Release().ok());
  auto fetched = pool.Fetch(id0);
  ASSERT_FALSE(fetched.ok());
  EXPECT_EQ(fetched.status().code(), StatusCode::kCorruption);
  EXPECT_GT(pager.stats().bit_flips, 0u);
  EXPECT_GT(pool.stats().checksum_failures, 0u);
  EXPECT_EQ(pool.PinnedFrameCount(), 0u);
}

TEST(FaultInjectionTest, FailedOpsLeakNoPins) {
  // Drive the heap and the B+-tree straight over a faulty pager: whatever
  // each operation returns, the pool must be quiescent afterwards. A leaked
  // pin would not fail the operation itself — it would wedge eviction for
  // some later, unrelated one, which is exactly why the PageRef guards own
  // every pin on the error paths.
  for (uint64_t seed : {101u, 202u, 303u, 404u}) {
    ordb::FaultOptions fault;
    fault.seed = seed;
    fault.transient_rate = 0.2;
    fault.permanent_rate = 0.08;
    ordb::FaultInjectingPager pager(std::make_unique<ordb::MemoryPager>(),
                                    fault);
    ordb::BufferPool pool(&pager, 4);
    auto heap = ordb::HeapFile::Create(&pool);
    EXPECT_EQ(pool.PinnedFrameCount(), 0u);
    auto tree = ordb::BPlusTree::Create(&pool);
    EXPECT_EQ(pool.PinnedFrameCount(), 0u);
    const std::string record(600, 'r');
    const std::string big(3 * ordb::kPageSize, 'B');  // overflow chain
    for (int i = 0; i < 120; ++i) {
      if (heap.ok()) {
        auto rid = heap->Insert(i % 10 == 0 ? big : record);
        EXPECT_EQ(pool.PinnedFrameCount(), 0u)
            << "heap insert leaked a pin, seed " << seed;
        if (rid.ok()) {
          XO_DISCARD_STATUS(heap->Get(*rid), "faults expected");
          EXPECT_EQ(pool.PinnedFrameCount(), 0u)
              << "heap get leaked a pin, seed " << seed;
        }
      }
      if (tree.ok()) {
        XO_DISCARD_STATUS(tree->Insert(static_cast<uint64_t>(i) * 37, i),
                          "faults expected");
        EXPECT_EQ(pool.PinnedFrameCount(), 0u)
            << "tree insert leaked a pin, seed " << seed;
        XO_DISCARD_STATUS(tree->Find(static_cast<uint64_t>(i) * 37),
                          "faults expected");
        EXPECT_EQ(pool.PinnedFrameCount(), 0u)
            << "tree find leaked a pin, seed " << seed;
      }
    }
  }
}

TEST(FaultInjectionTest, TornWritesFailCleanlyAndAreDetectable) {
  ordb::FaultOptions fault;
  fault.seed = 13;
  fault.torn_write_rate = 1.0;
  auto base = std::make_unique<ordb::MemoryPager>();
  ordb::FaultInjectingPager pager(std::move(base), fault);
  auto id = pager.Allocate();
  ASSERT_TRUE(id.ok());
  char buf[ordb::kPageSize];
  std::memset(buf, 'x', ordb::kPageSize);
  ordb::SetPageChecksum(buf);
  Status s = pager.Write(*id, buf);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kIOError);
  EXPECT_NE(s.message().find("torn"), std::string::npos);
  // The prefix that did reach "disk" no longer matches its checksum.
  char stored[ordb::kPageSize];
  ASSERT_TRUE(pager.base()->Read(*id, stored).ok());
  EXPECT_FALSE(ordb::VerifyPageChecksum(stored));
  EXPECT_GT(pager.stats().torn_writes, 0u);
}

TEST(LoaderRobustnessTest, FailedDocumentsAreIsolated) {
  // When the disk dies mid-batch, the loader records which documents were
  // lost instead of sinking the whole load.
  auto schema = benchutil::MapDtd(datagen::kPlaysDtd,
                                  benchutil::Mapping::kXorator);
  ASSERT_TRUE(schema.ok());
  datagen::ShakespeareOptions opts;
  opts.plays = 4;
  opts.acts_per_play = 1;
  opts.scenes_per_act = 2;
  auto corpus = datagen::ShakespeareGenerator(opts).GenerateCorpus();
  std::vector<const xml::Node*> docs;
  for (const auto& d : corpus) docs.push_back(d.get());

  DbOptions options;
  options.path = ::testing::TempDir() + "/xorator_isolate.db";
  std::remove(options.path.c_str());
  std::remove((options.path + ".wal").c_str());
  options.buffer_pool_pages = 8;
  ordb::FaultOptions fault;
  fault.seed = 21;
  fault.fail_after_writes = 9;  // enough for setup plus part of the load
  options.fault = fault;
  auto db = Database::Open(options);
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  shred::Loader loader(db->get(), &*schema);
  ASSERT_TRUE(loader.CreateTables().ok());
  auto report = loader.Load(docs);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_GT(report->skipped, 0u);
  ASSERT_FALSE(report->errors.empty());
  EXPECT_EQ(report->documents + report->skipped, docs.size());
  EXPECT_EQ(report->skipped, report->errors.size());
  // Storage casualties are skips, never guard stops.
  EXPECT_EQ(report->cancelled, 0u);
  EXPECT_EQ(report->stopped_code, StatusCode::kOk);
  EXPECT_EQ(report->doc_millis.size(), docs.size());
  for (const auto& e : report->errors) {
    EXPECT_FALSE(e.status.ok());
    EXPECT_LT(e.document, docs.size());
  }
  // The same schedule with stop_on_error aborts at the first casualty.
  std::remove(options.path.c_str());
  std::remove((options.path + ".wal").c_str());
  auto db2 = Database::Open(options);
  ASSERT_TRUE(db2.ok());
  shred::Loader loader2(db2->get(), &*schema);
  ASSERT_TRUE(loader2.CreateTables().ok());
  shred::LoadOptions strict;
  strict.stop_on_error = true;
  auto report2 = loader2.Load(docs, strict);
  EXPECT_FALSE(report2.ok());
  (*db)->Kill();
  (*db2)->Kill();
  std::remove(options.path.c_str());
  std::remove((options.path + ".wal").c_str());
}

TEST(LoaderRobustnessTest, GuardStopsEndTheBatchDistinctFromSkips) {
  // A guard stop mid-bulk-load latches, so the loader ends the batch and
  // reports it under `cancelled` / `stopped_code` — NOT as a per-document
  // skip, which is reserved for casualties that later documents can
  // survive (LoadReport docs in src/shred/loader.h).
  auto schema = benchutil::MapDtd(datagen::kPlaysDtd,
                                  benchutil::Mapping::kXorator);
  ASSERT_TRUE(schema.ok());
  datagen::ShakespeareOptions opts;
  opts.plays = 6;
  opts.acts_per_play = 1;
  opts.scenes_per_act = 2;
  auto corpus = datagen::ShakespeareGenerator(opts).GenerateCorpus();
  std::vector<const xml::Node*> docs;
  for (const auto& d : corpus) docs.push_back(d.get());

  // Part 1: a guard cancelled before the load begins trips at the first
  // between-document checkpoint. The report is still well formed: the
  // cancelled document got a timing entry, nothing was "skipped".
  {
    auto db = OpenDb();
    shred::Loader loader(db.get(), &*schema);
    ASSERT_TRUE(loader.CreateTables().ok());
    ordb::QueryGuard guard(0, 0);
    guard.Cancel();
    shred::LoadOptions options;
    options.guard = &guard;
    auto report = loader.Load(docs, options);
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    EXPECT_EQ(report->documents, 0u);
    EXPECT_EQ(report->skipped, 0u);
    EXPECT_EQ(report->cancelled, 1u);
    EXPECT_EQ(report->stopped_code, StatusCode::kCancelled);
    EXPECT_FALSE(report->stopped_message.empty());
    EXPECT_EQ(report->doc_millis.size(), 1u);
    EXPECT_EQ(db->buffer_pool()->PinnedFrameCount(), 0u);
    // The database stays usable for a clean re-run without the guard.
    auto retry = loader.Load(docs);
    ASSERT_TRUE(retry.ok());
    EXPECT_EQ(retry->documents, docs.size());
    EXPECT_EQ(retry->cancelled, 0u);
    EXPECT_EQ(retry->stopped_code, StatusCode::kOk);
    EXPECT_EQ(retry->doc_millis.size(), docs.size());
  }

  // Part 2: an already-expired deadline trips the same way but reports
  // kDeadlineExceeded — the two stop reasons stay distinguishable.
  {
    auto db = OpenDb();
    shred::Loader loader(db.get(), &*schema);
    ASSERT_TRUE(loader.CreateTables().ok());
    ordb::QueryGuard guard(/*deadline_millis=*/1, 0);
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    shred::LoadOptions options;
    options.guard = &guard;
    auto report = loader.Load(docs, options);
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    EXPECT_EQ(report->cancelled, 1u);
    EXPECT_EQ(report->skipped, 0u);
    EXPECT_LT(report->documents, docs.size());
    EXPECT_EQ(report->stopped_code, StatusCode::kDeadlineExceeded);
    EXPECT_EQ(report->doc_millis.size(), report->documents + 1);
    EXPECT_EQ(db->buffer_pool()->PinnedFrameCount(), 0u);
  }

  // Part 3: cancellation arriving from another thread while the bulk load
  // is in flight. The corpus here is much larger, and the canceller fires
  // as soon as the loader has polled the guard once — so the cancel lands
  // with nearly the whole batch still ahead of it.
  {
    datagen::ShakespeareOptions big;
    big.plays = 30;
    big.acts_per_play = 2;
    big.scenes_per_act = 3;
    auto big_corpus = datagen::ShakespeareGenerator(big).GenerateCorpus();
    std::vector<const xml::Node*> big_docs;
    for (const auto& d : big_corpus) big_docs.push_back(d.get());
    auto db = OpenDb();
    shred::Loader loader(db.get(), &*schema);
    ASSERT_TRUE(loader.CreateTables().ok());
    ordb::QueryGuard guard(0, 0);
    std::thread canceller([&guard] {
      while (guard.Stats().checkpoints == 0) std::this_thread::yield();
      guard.Cancel();
    });
    shred::LoadOptions options;
    options.guard = &guard;
    auto report = loader.Load(big_docs, options);
    canceller.join();
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    EXPECT_EQ(report->cancelled, 1u);
    EXPECT_EQ(report->skipped, 0u);
    EXPECT_EQ(report->stopped_code, StatusCode::kCancelled);
    EXPECT_EQ(report->doc_millis.size(), report->documents + 1);
    EXPECT_EQ(db->buffer_pool()->PinnedFrameCount(), 0u);
    // Whatever was committed before the stop is still queryable.
    auto r = db->Query("SELECT COUNT(*) AS n FROM speech");
    ASSERT_TRUE(r.ok()) << r.status().ToString();
  }
}

TEST(FaultInjectionTest, FaultsAndGuardsInterleaveCleanly) {
  // Injected storage faults and query guardrails race each other: every
  // operation must end in exactly one clean status (a fault code OR a
  // guard stop code OR success), with zero pins and a consistent WAL
  // afterwards — the two failure machineries must not corrupt each other.
  DbOptions options;
  options.path = ::testing::TempDir() + "/xorator_fault_guard.db";
  std::remove(options.path.c_str());
  std::remove((options.path + ".wal").c_str());
  options.buffer_pool_pages = 8;
  ordb::FaultOptions fault;
  fault.seed = 17;
  fault.transient_rate = 0.15;
  fault.permanent_rate = 0.03;
  options.fault = fault;
  auto opened = Database::Open(options);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  // A raw pointer shared with the canceller thread: re-inspecting the
  // Result from two threads would race on the debug inspected flag.
  Database* db = opened->get();
  ASSERT_TRUE(db->Execute("CREATE TABLE t (a INTEGER, b VARCHAR)").ok());

  auto clean_code = [](StatusCode c) {
    return c == StatusCode::kOk || c == StatusCode::kIOError ||
           c == StatusCode::kCorruption ||
           ordb::QueryGuard::IsStopCode(c);
  };

  std::atomic<bool> stop{false};
  std::thread canceller([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      for (uint64_t id = 500; id < 504; ++id) {
        Status s = db->Cancel(id);
        // NotFound just means nothing is registered under the id.
        if (!s.ok() && s.code() != StatusCode::kNotFound) ADD_FAILURE();
      }
      std::this_thread::yield();
    }
  });

  for (int i = 0; i < 40; ++i) {
    std::vector<Tuple> rows;
    for (int r = 0; r < 50; ++r) {
      rows.push_back({Value::Int(i * 50 + r),
                      Value::Varchar(std::string(60, 'g'))});
    }
    Status ins = db->BulkInsert("t", rows);
    EXPECT_TRUE(clean_code(ins.code())) << ins.ToString();
    EXPECT_EQ(db->buffer_pool()->PinnedFrameCount(), 0u);

    ordb::QueryOptions qopts;
    qopts.query_id = 500 + static_cast<uint64_t>(i % 4);
    if (i % 3 == 0) qopts.deadline_millis = 1;
    if (i % 5 == 0) qopts.max_memory_bytes = 4096;
    auto q = db->Query(
        "SELECT COUNT(*) AS n FROM t t1, t t2 WHERE t1.a < 5", qopts);
    EXPECT_TRUE(clean_code(q.status().code())) << q.status().ToString();
    EXPECT_EQ(db->buffer_pool()->PinnedFrameCount(), 0u);
  }
  stop.store(true, std::memory_order_relaxed);
  canceller.join();

  // WAL consistency: a checkpoint either succeeds or dies on a storage
  // fault — never on anything the guards left behind.
  Status ckpt = db->Checkpoint();
  EXPECT_TRUE(clean_code(ckpt.code())) << ckpt.ToString();
  EXPECT_EQ(db->buffer_pool()->PinnedFrameCount(), 0u);
  db->Kill();  // a destructor checkpoint could just fail again
  std::remove(options.path.c_str());
  std::remove((options.path + ".wal").c_str());
}

TEST(EngineRobustnessTest, SelfJoinUsesDistinctAliases) {
  auto db = OpenDb();
  ASSERT_TRUE(db->Execute("CREATE TABLE n (id INTEGER, parent INTEGER)").ok());
  ASSERT_TRUE(db->Execute("INSERT INTO n VALUES (1, 0), (2, 1), (3, 1), "
                          "(4, 2)")
                  .ok());
  auto r = db->Query(
      "SELECT child.id FROM n AS parent, n AS child "
      "WHERE child.parent = parent.id AND parent.parent = 0");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->rows.size(), 2u);  // children of node 1
}

TEST(EngineRobustnessTest, NullHeavyData) {
  auto db = OpenDb();
  ASSERT_TRUE(db->Execute("CREATE TABLE t (a INTEGER, b VARCHAR)").ok());
  ASSERT_TRUE(db->Execute("INSERT INTO t VALUES (NULL, NULL), (1, NULL), "
                          "(NULL, 'x')")
                  .ok());
  EXPECT_EQ(db->Query("SELECT COUNT(*) AS n FROM t WHERE a IS NULL")
                ->rows[0][0]
                .AsInt(),
            2);
  EXPECT_EQ(db->Query("SELECT COUNT(b) AS n FROM t")->rows[0][0].AsInt(), 1);
  // NULL never satisfies comparisons.
  EXPECT_EQ(db->Query("SELECT COUNT(*) AS n FROM t WHERE a = 1")
                ->rows[0][0]
                .AsInt(),
            1);
  EXPECT_EQ(db->Query("SELECT COUNT(*) AS n FROM t WHERE a <> 1")
                ->rows[0][0]
                .AsInt(),
            0);
  // Sorting with nulls is stable and total.
  auto sorted = db->Query("SELECT a FROM t ORDER BY a");
  ASSERT_TRUE(sorted.ok());
  EXPECT_TRUE(sorted->rows[0][0].is_null());
}

// A page that failed its checksum is quarantined: the second statement to
// touch it is rejected from the quarantine set without re-reading the disk
// (DESIGN.md §13). The zero-rate fault injector is wrapped purely for its
// read counter.
TEST(FaultInjectionTest, QuarantinedPageFailsFastWithoutDiskIO) {
  DbOptions options;
  options.path = ::testing::TempDir() + "/xorator_quarantine.db";
  std::remove(options.path.c_str());
  std::remove((options.path + ".wal").c_str());
  ordb::PageId first_page = ordb::kInvalidPageId;
  {
    auto db = Database::Open(options);
    ASSERT_TRUE(db.ok());
    ASSERT_TRUE((*db)->Execute("CREATE TABLE t (a INTEGER)").ok());
    ASSERT_TRUE((*db)->Execute("INSERT INTO t VALUES (1), (2), (3)").ok());
    const ordb::TableInfo* t = (*db)->catalog()->FindTable("t");
    ASSERT_NE(t, nullptr);
    first_page = t->heap->first_page();
    ASSERT_TRUE((*db)->Close().ok());
  }
  {  // rot the heap page's record area behind the engine's back
    std::fstream f(options.path,
                   std::ios::binary | std::ios::in | std::ios::out);
    f.seekp(static_cast<std::streamoff>(first_page) * ordb::kPageSize + 512);
    f.put('\xEE');
  }
  options.fault = ordb::FaultOptions{};  // all rates zero: a pure counter
  auto db = Database::Open(options);
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  auto first = (*db)->Query("SELECT COUNT(*) AS n FROM t");
  ASSERT_FALSE(first.ok());
  EXPECT_EQ(first.status().code(), StatusCode::kCorruption);
  EXPECT_TRUE((*db)->buffer_pool()->IsQuarantined(first_page));
  EXPECT_EQ((*db)->buffer_pool()->stats().quarantined_pages, 1u);
  const uint64_t reads_after_first = (*db)->fault_pager()->stats().reads;

  // Same statement again: still kCorruption, but served from the
  // quarantine set — not one further pager read happens (every healthy
  // page the scan needs is already resident).
  auto second = (*db)->Query("SELECT COUNT(*) AS n FROM t");
  ASSERT_FALSE(second.ok());
  EXPECT_EQ(second.status().code(), StatusCode::kCorruption);
  EXPECT_EQ((*db)->fault_pager()->stats().reads, reads_after_first);
  EXPECT_GT((*db)->buffer_pool()->stats().quarantine_hits, 0u);
  EXPECT_EQ((*db)->buffer_pool()->PinnedFrameCount(), 0u);
  (*db)->Kill();  // checkpointing over poisoned pages helps nobody
  std::remove(options.path.c_str());
  std::remove((options.path + ".wal").c_str());
}

// Degraded-scan mode extends to XADT fragments: a value whose bytes no
// longer decode loses its own fragments, not the whole query — strictly
// opt-in (the strict expectations live in CorruptXadtBytesThroughSql).
TEST(XadtRobustnessTest, DegradedScanSkipsCorruptFragments) {
  auto db = OpenDb();
  ASSERT_TRUE(db->Execute("CREATE TABLE t (x XADT)").ok());
  std::vector<Tuple> rows;
  rows.push_back({Value::Xadt("Zgarbage-marker")});
  rows.push_back({Value::Xadt("R<a><unclosed>")});
  ASSERT_TRUE(db->BulkInsert("t", rows).ok());
  const std::string sql = "SELECT u.out FROM t, table(unnest(x, 'a')) u";
  // Strict mode still propagates the decode error.
  ASSERT_FALSE(db->Query(sql).ok());
  // Skip mode drops both broken values and reports the count on the
  // resilience stats line.
  ordb::QueryOptions skip;
  skip.skip_quarantined = true;
  auto degraded = db->Query(sql, skip);
  ASSERT_TRUE(degraded.ok()) << degraded.status().ToString();
  EXPECT_TRUE(degraded->rows.empty());
  EXPECT_NE(degraded->plan.find("skipped_fragments=2"), std::string::npos)
      << degraded->plan;
}

}  // namespace
}  // namespace xorator
