// Tests for the in-place typed row codec (src/ordb/row_codec.h): RowView
// round-trips against EncodeTuple/DecodeTuple, in-place decoding semantics,
// Materialize capacity reuse, and strict rejection of malformed records.

#include "ordb/row_codec.h"

#include <cstdint>
#include <limits>
#include <string>

#include <gtest/gtest.h>

#include "common/varint.h"
#include "ordb/tuple.h"
#include "ordb/value.h"

namespace xorator::ordb {
namespace {

TableSchema AllTypesSchema() {
  TableSchema schema;
  schema.columns = {{"b", TypeId::kBoolean},
                    {"i", TypeId::kInteger},
                    {"d", TypeId::kDouble},
                    {"s", TypeId::kVarchar},
                    {"x", TypeId::kXadt}};
  return schema;
}

Tuple AllTypesTuple() {
  return {Value::Bool(true), Value::Int(-123456789), Value::Double(2.5),
          Value::Varchar("hello world"), Value::Xadt("R<LINE>hi</LINE>")};
}

void ExpectTupleEq(const Tuple& a, const Tuple& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].type(), b[i].type()) << "column " << i;
    EXPECT_EQ(a[i].is_null(), b[i].is_null()) << "column " << i;
    if (!a[i].is_null()) {
      EXPECT_TRUE(a[i].Equals(b[i])) << "column " << i;
    }
  }
}

TEST(RowViewTest, RoundTripsAllTypes) {
  TableSchema schema = AllTypesSchema();
  Tuple in = AllTypesTuple();
  std::string bytes;
  EncodeTuple(schema, in, &bytes);

  auto row = RowView::Parse(schema, bytes);
  ASSERT_TRUE(row.ok()) << row.status().ToString();
  ASSERT_EQ(row->columns(), 5u);

  EXPECT_EQ(row->column(0).type(), TypeId::kBoolean);
  EXPECT_TRUE(row->column(0).AsBool());
  EXPECT_EQ(row->column(1).AsInt(), -123456789);
  EXPECT_EQ(row->column(2).AsDouble(), 2.5);
  EXPECT_EQ(row->column(3).bytes(), "hello world");
  EXPECT_EQ(row->column(4).bytes(), "R<LINE>hi</LINE>");

  Tuple out;
  row->Materialize(&out);
  ExpectTupleEq(in, out);
}

TEST(RowViewTest, StringPayloadsViewTheEncodedBufferInPlace) {
  TableSchema schema = AllTypesSchema();
  std::string bytes;
  EncodeTuple(schema, AllTypesTuple(), &bytes);

  auto row = RowView::Parse(schema, bytes);
  ASSERT_TRUE(row.ok());
  std::string_view payload = row->column(3).bytes();
  // Zero-copy: the view aims inside the encoded record, not at a copy.
  EXPECT_GE(payload.data(), bytes.data());
  EXPECT_LE(payload.data() + payload.size(), bytes.data() + bytes.size());
  EXPECT_EQ(row->raw(), std::string_view(bytes));
}

TEST(RowViewTest, NullsKeepTheirColumnTypeAndDecodeAsNull) {
  TableSchema schema = AllTypesSchema();
  Tuple in = {Value::Null(), Value::Null(), Value::Null(), Value::Null(),
              Value::Null()};
  std::string bytes;
  EncodeTuple(schema, in, &bytes);

  auto row = RowView::Parse(schema, bytes);
  ASSERT_TRUE(row.ok());
  for (size_t i = 0; i < row->columns(); ++i) {
    EXPECT_TRUE(row->column(i).is_null()) << "column " << i;
    EXPECT_EQ(row->column(i).type(), schema.columns[i].type) << "column " << i;
  }
  Tuple out;
  row->Materialize(&out);
  ExpectTupleEq(in, out);
}

TEST(RowViewTest, EmptyAndLargeStrings) {
  TableSchema schema;
  schema.columns = {{"a", TypeId::kVarchar}, {"b", TypeId::kVarchar}};
  // A payload long enough to need a multi-byte varint length prefix.
  std::string big(100000, 'x');
  Tuple in = {Value::Varchar(""), Value::Varchar(big)};
  std::string bytes;
  EncodeTuple(schema, in, &bytes);

  auto row = RowView::Parse(schema, bytes);
  ASSERT_TRUE(row.ok());
  EXPECT_EQ(row->column(0).bytes(), "");
  EXPECT_FALSE(row->column(0).is_null());
  EXPECT_EQ(row->column(1).bytes().size(), big.size());
  Tuple out;
  row->Materialize(&out);
  ExpectTupleEq(in, out);
}

TEST(RowViewTest, ExtremeNumericsRoundTrip) {
  TableSchema schema;
  schema.columns = {{"lo", TypeId::kInteger},
                    {"hi", TypeId::kInteger},
                    {"inf", TypeId::kDouble},
                    {"tiny", TypeId::kDouble}};
  Tuple in = {Value::Int(std::numeric_limits<int64_t>::min()),
              Value::Int(std::numeric_limits<int64_t>::max()),
              Value::Double(std::numeric_limits<double>::infinity()),
              Value::Double(std::numeric_limits<double>::denorm_min())};
  std::string bytes;
  EncodeTuple(schema, in, &bytes);

  auto row = RowView::Parse(schema, bytes);
  ASSERT_TRUE(row.ok());
  EXPECT_EQ(row->column(0).AsInt(), std::numeric_limits<int64_t>::min());
  EXPECT_EQ(row->column(1).AsInt(), std::numeric_limits<int64_t>::max());
  EXPECT_EQ(row->column(2).AsDouble(), std::numeric_limits<double>::infinity());
  EXPECT_EQ(row->column(3).AsDouble(),
            std::numeric_limits<double>::denorm_min());
}

TEST(RowViewTest, WideSchemaWalksPastTheInlineOffsetCache) {
  // More columns than RowView's 16 cached offsets: the tail columns take
  // the skip-forward path.
  TableSchema schema;
  Tuple in;
  for (int i = 0; i < 40; ++i) {
    if (i % 3 == 0) {
      schema.columns.push_back({"i" + std::to_string(i), TypeId::kInteger});
      in.push_back(Value::Int(i * 1000));
    } else if (i % 3 == 1) {
      schema.columns.push_back({"s" + std::to_string(i), TypeId::kVarchar});
      in.push_back(Value::Varchar(std::string(i, 'a')));
    } else {
      schema.columns.push_back({"n" + std::to_string(i), TypeId::kDouble});
      in.push_back(i % 6 == 2 ? Value::Null() : Value::Double(i * 0.5));
    }
  }
  std::string bytes;
  EncodeTuple(schema, in, &bytes);

  auto row = RowView::Parse(schema, bytes);
  ASSERT_TRUE(row.ok());
  // Random access across the cache boundary, in both directions.
  EXPECT_EQ(row->column(39).AsInt(), 39000);
  EXPECT_EQ(row->column(37).bytes(), std::string(37, 'a'));
  EXPECT_EQ(row->column(0).AsInt(), 0);
  Tuple out;
  row->Materialize(&out);
  ExpectTupleEq(in, out);
}

TEST(RowViewTest, MaterializeReusesTheTupleInPlace) {
  TableSchema schema = AllTypesSchema();
  std::string bytes1, bytes2;
  EncodeTuple(schema, AllTypesTuple(), &bytes1);
  Tuple second = {Value::Bool(false), Value::Int(7), Value::Null(),
                  Value::Varchar("x"), Value::Null()};
  EncodeTuple(schema, second, &bytes2);

  Tuple out;
  auto row1 = RowView::Parse(schema, bytes1);
  ASSERT_TRUE(row1.ok());
  row1->Materialize(&out);
  ExpectTupleEq(AllTypesTuple(), out);

  // Refill the same tuple: values (and the stale string payloads) must be
  // fully replaced, including columns that became null.
  auto row2 = RowView::Parse(schema, bytes2);
  ASSERT_TRUE(row2.ok());
  row2->Materialize(&out);
  ExpectTupleEq(second, out);
  EXPECT_TRUE(out[4].AsString().empty()) << "stale XADT payload leaked";
}

TEST(RowViewTest, AgreesWithDecodeTuple) {
  TableSchema schema = AllTypesSchema();
  Tuple in = {Value::Bool(false), Value::Null(), Value::Double(-0.0),
              Value::Varchar("differential"), Value::Xadt("")};
  std::string bytes;
  EncodeTuple(schema, in, &bytes);

  auto via_decode = DecodeTuple(schema, bytes);
  ASSERT_TRUE(via_decode.ok());
  auto row = RowView::Parse(schema, bytes);
  ASSERT_TRUE(row.ok());
  Tuple via_view;
  row->Materialize(&via_view);
  ExpectTupleEq(*via_decode, via_view);
}

TEST(RowViewTest, RejectsTruncatedBitmap) {
  TableSchema schema = AllTypesSchema();
  EXPECT_FALSE(RowView::Parse(schema, "").ok());
}

TEST(RowViewTest, RejectsTruncatedFixedWidthColumn) {
  TableSchema schema;
  schema.columns = {{"i", TypeId::kInteger}};
  std::string bytes;
  EncodeTuple(schema, {Value::Int(42)}, &bytes);
  for (size_t cut = 1; cut < bytes.size(); ++cut) {
    EXPECT_FALSE(RowView::Parse(schema, bytes.substr(0, cut)).ok())
        << "cut at " << cut;
  }
}

TEST(RowViewTest, RejectsOverflowingStringLength) {
  TableSchema schema;
  schema.columns = {{"s", TypeId::kVarchar}};
  std::string bytes;
  bytes.push_back('\0');          // null bitmap: not null
  PutVarint(&bytes, 1000);        // claims 1000 bytes...
  bytes.append("short", 5);       // ...delivers 5
  EXPECT_FALSE(RowView::Parse(schema, bytes).ok());
}

TEST(RowViewTest, RejectsTrailingBytes) {
  TableSchema schema = AllTypesSchema();
  std::string bytes;
  EncodeTuple(schema, AllTypesTuple(), &bytes);
  bytes.push_back('!');
  EXPECT_FALSE(RowView::Parse(schema, bytes).ok());
  // DecodeTuple shares the validator, so it is equally strict.
  EXPECT_FALSE(DecodeTuple(schema, bytes).ok());
}

TEST(RowViewTest, RejectsTruncatedVarintPrefix) {
  TableSchema schema;
  schema.columns = {{"s", TypeId::kVarchar}};
  std::string bytes;
  bytes.push_back('\0');
  bytes.push_back(static_cast<char>(0x80));  // continuation bit, no next byte
  EXPECT_FALSE(RowView::Parse(schema, bytes).ok());
}

}  // namespace
}  // namespace xorator::ordb
