#include <gtest/gtest.h>

#include "datagen/dtds.h"
#include "datagen/generators.h"
#include "xadt/scanner.h"
#include "xadt/xadt.h"
#include "xml/dtd.h"
#include "xml/parser.h"
#include "xml/serializer.h"

namespace xorator::xadt {
namespace {

using EventKind = FragmentScanner::EventKind;

std::string EncodeXml(const std::string& xml_text, bool compressed) {
  auto frag = xml::ParseFragment(xml_text);
  EXPECT_TRUE(frag.ok()) << frag.status().ToString();
  std::vector<const xml::Node*> roots;
  for (const auto& c : (*frag)->children()) roots.push_back(c.get());
  return Encode(roots, compressed);
}

struct FlatEvent {
  EventKind kind;
  std::string name_or_text;
};

Result<std::vector<FlatEvent>> Drain(std::string_view bytes) {
  XO_ASSIGN_OR_RETURN(FragmentScanner scanner,
                      FragmentScanner::Create(bytes));
  std::vector<FlatEvent> out;
  while (true) {
    XO_ASSIGN_OR_RETURN(auto event, scanner.Next());
    if (event.kind == EventKind::kEof) return out;
    FlatEvent flat;
    flat.kind = event.kind;
    flat.name_or_text = event.kind == EventKind::kText
                            ? std::string(event.text)
                            : std::string(event.name);
    out.push_back(std::move(flat));
  }
}

class ScannerFormatTest : public ::testing::TestWithParam<bool> {};

TEST_P(ScannerFormatTest, EventSequence) {
  std::string bytes =
      EncodeXml("<a><b>hi</b><c/></a><d>tail</d>", GetParam());
  auto events = Drain(bytes);
  ASSERT_TRUE(events.ok()) << events.status().ToString();
  std::vector<FlatEvent> expected = {
      {EventKind::kStart, "a"}, {EventKind::kStart, "b"},
      {EventKind::kText, "hi"}, {EventKind::kEnd, "b"},
      {EventKind::kStart, "c"}, {EventKind::kEnd, "c"},
      {EventKind::kEnd, "a"},   {EventKind::kStart, "d"},
      {EventKind::kText, "tail"}, {EventKind::kEnd, "d"}};
  ASSERT_EQ(events->size(), expected.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ((*events)[i].kind, expected[i].kind) << i;
    EXPECT_EQ((*events)[i].name_or_text, expected[i].name_or_text) << i;
  }
}

TEST_P(ScannerFormatTest, OffsetsSliceToValidFragments) {
  std::string bytes = EncodeXml(
      "<x><y a=\"1\">one</y></x><x>two</x>", GetParam());
  auto scanner = FragmentScanner::Create(bytes);
  ASSERT_TRUE(scanner.ok());
  std::string header(scanner->header());
  // Capture the byte range of each top-level element and re-decode it.
  std::vector<std::pair<size_t, size_t>> ranges;
  size_t depth = 0;
  size_t open_offset = 0;
  while (true) {
    auto event = scanner->Next();
    ASSERT_TRUE(event.ok()) << event.status().ToString();
    if (event->kind == EventKind::kEof) break;
    if (event->kind == EventKind::kStart) {
      if (depth == 0) open_offset = event->offset;
      ++depth;
    } else if (event->kind == EventKind::kEnd) {
      --depth;
      if (depth == 0) ranges.emplace_back(open_offset, event->end_offset);
    }
  }
  ASSERT_EQ(ranges.size(), 2u);
  std::string first = header.empty() ? "R" : header;
  first.append(bytes.substr(ranges[0].first,
                            ranges[0].second - ranges[0].first));
  auto xml_text = ToXmlString(first);
  ASSERT_TRUE(xml_text.ok()) << xml_text.status().ToString();
  EXPECT_EQ(*xml_text, "<x><y a=\"1\">one</y></x>");
  std::string second = header.empty() ? "R" : header;
  second.append(bytes.substr(ranges[1].first,
                             ranges[1].second - ranges[1].first));
  EXPECT_EQ(*ToXmlString(second), "<x>two</x>");
}

TEST_P(ScannerFormatTest, AgreesWithDomOnRandomDocs) {
  auto dtd = xml::ParseDtd(datagen::kShakespeareDtd);
  ASSERT_TRUE(dtd.ok());
  for (uint64_t seed = 0; seed < 10; ++seed) {
    datagen::RandomDocOptions opts;
    opts.seed = seed;
    datagen::RandomDocGenerator gen(&*dtd, opts);
    auto doc = gen.Generate("PLAY");
    ASSERT_TRUE(doc.ok());
    std::vector<const xml::Node*> roots = {doc->get()};
    std::string bytes = Encode(roots, GetParam());
    // Text content via the scanner equals DOM text content.
    auto text = TextContent(bytes);
    ASSERT_TRUE(text.ok());
    EXPECT_EQ(*text, (*doc)->TextContent()) << "seed " << seed;
    // Event stream is balanced and name-consistent.
    auto events = Drain(bytes);
    ASSERT_TRUE(events.ok()) << "seed " << seed;
    int depth = 0;
    for (const FlatEvent& e : *events) {
      if (e.kind == EventKind::kStart) ++depth;
      if (e.kind == EventKind::kEnd) --depth;
      ASSERT_GE(depth, 0);
    }
    EXPECT_EQ(depth, 0);
  }
}

INSTANTIATE_TEST_SUITE_P(RawAndCompressed, ScannerFormatTest,
                         ::testing::Values(false, true));

TEST(ScannerRawTest, HandlesEntitiesInText) {
  auto events = Drain("R<a>x &amp; y</a>");
  ASSERT_TRUE(events.ok());
  EXPECT_EQ((*events)[1].name_or_text, "x & y");
}

TEST(ScannerRawTest, HandlesCommentsAndCdata) {
  auto events = Drain("R<a><!-- skip --><![CDATA[<raw>&]]></a>");
  ASSERT_TRUE(events.ok());
  ASSERT_EQ(events->size(), 3u);
  EXPECT_EQ((*events)[1].kind, EventKind::kText);
  EXPECT_EQ((*events)[1].name_or_text, "<raw>&");
}

TEST(ScannerRawTest, AttributesWithAngleBrackets) {
  auto events = Drain("R<a k=\"x>y\">t</a>");
  ASSERT_TRUE(events.ok()) << events.status().ToString();
  ASSERT_EQ(events->size(), 3u);
  EXPECT_EQ((*events)[0].name_or_text, "a");
}

TEST(ScannerRawTest, SelfClosingProducesStartEnd) {
  auto events = Drain("R<a/><b x='1'/>");
  ASSERT_TRUE(events.ok());
  ASSERT_EQ(events->size(), 4u);
  EXPECT_EQ((*events)[0].kind, EventKind::kStart);
  EXPECT_EQ((*events)[1].kind, EventKind::kEnd);
  EXPECT_EQ((*events)[2].name_or_text, "b");
}

TEST(ScannerRawTest, MalformedInputsFailCleanly) {
  for (const char* bad :
       {"R<a>", "R</a>", "R<a></b>", "R<a", "R<a attr='x>y</a>",
        "R<!-- unterminated", "R<![CDATA[ unterminated"}) {
    auto events = Drain(bad);
    EXPECT_FALSE(events.ok()) << bad;
  }
}

TEST(ScannerCompressedTest, MalformedInputsFailCleanly) {
  std::string good = EncodeXml("<a><b>t</b></a>", true);
  // Truncations at every prefix either fail or end cleanly, never crash.
  for (size_t len = 0; len < good.size(); ++len) {
    auto events = Drain(good.substr(0, len));
    XO_DISCARD_STATUS(events, "a truncated prefix may fail or end cleanly; "
                              "the test only asserts no crash");
  }
  // Corrupted opcode.
  std::string bad = good;
  bad[bad.size() - 1] = '\x7F';
  EXPECT_FALSE(Drain(bad).ok());
}

TEST(ScannerTest, EmptyValue) {
  auto events = Drain("");
  ASSERT_TRUE(events.ok());
  EXPECT_TRUE(events->empty());
  auto raw_events = Drain("R");
  ASSERT_TRUE(raw_events.ok());
  EXPECT_TRUE(raw_events->empty());
}

TEST(ScannerTest, UnknownMarkerRejected) {
  EXPECT_FALSE(FragmentScanner::Create("Zxx").ok());
}

TEST(ScannerTest, HeaderForCompressed) {
  std::string bytes = EncodeXml("<tag>t</tag>", true);
  auto scanner = FragmentScanner::Create(bytes);
  ASSERT_TRUE(scanner.ok());
  EXPECT_TRUE(scanner->compressed());
  EXPECT_GT(scanner->header().size(), 1u);
  EXPECT_EQ(scanner->header()[0], 'C');
}

}  // namespace
}  // namespace xorator::xadt
