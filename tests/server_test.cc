// End-to-end tests of the network front end (DESIGN.md section 17): the
// thread-pool socket server (src/server/server.h), the wire protocol, and
// the retrying client — exercised over real loopback sockets against a
// live Database.
//
// The robustness contract under test:
//   * admission control (connection cap + bounded statement queue) rejects
//     excess load fast with a retryable kResourceExhausted + retry-after;
//   * deadlines propagate from the frame into the engine's query guard,
//     measured from admission so queue wait counts;
//   * a client that disconnects mid-query gets its statement cancelled;
//   * mutations are shed with the health latch's own status while the
//     engine is read-only, and STATS advertises the degraded state;
//   * Shutdown() drains in-flight statements before closing.
//
// The ServerSoakTest at the bottom is the server leg of the chaos-soak CI
// job: N client threads fire the paper's query mix plus bulk loads, random
// disconnects and malformed frames at a deliberately small server, while
// the engine's health latch flips read-only mid-run. Knobs:
//   XO_SERVER_SOAK_THREADS / XO_SERVER_SOAK_OPS / XO_SERVER_SOAK_SEED.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdlib>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <random>
#include <set>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "benchutil/fixture.h"
#include "benchutil/workload.h"
#include "datagen/dtds.h"
#include "datagen/generators.h"
#include "ordb/database.h"
#include "ordb/health.h"
#include "server/client.h"
#include "server/net.h"
#include "server/protocol.h"
#include "server/server.h"

namespace xorator {
namespace {

using server::CallOptions;
using server::Client;
using server::ClientOptions;
using server::Server;
using server::ServerOptions;
using server::ServerStats;

uint64_t EnvOr(const char* name, uint64_t fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  return std::strtoull(value, nullptr, 10);
}

/// Polls `pred` until it holds or `timeout_millis` passes.
bool PollUntil(const std::function<bool()>& pred, int64_t timeout_millis) {
  const auto give_up = std::chrono::steady_clock::now() +
                       std::chrono::milliseconds(timeout_millis);
  while (std::chrono::steady_clock::now() < give_up) {
    if (pred()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  return pred();
}

/// A fresh in-memory database with:
///   t(a INTEGER, b VARCHAR)   three known rows;
///   many(a INTEGER)           kManyRows rows, for slow scans;
///   snooze(x)                 UDF: sleeps kSnoozeMillis, returns x — a
///                             `SELECT snooze(a) FROM many` takes roughly
///                             kManyRows * kSnoozeMillis ms and crosses a
///                             guard checkpoint per row, so deadlines and
///                             cancellation land mid-statement.
constexpr int kManyRows = 150;
constexpr int kSnoozeMillis = 4;
const char kSlowSql[] = "SELECT snooze(a) AS s FROM many";

std::unique_ptr<ordb::Database> MakeDb() {
  auto opened = ordb::Database::Open({});
  EXPECT_TRUE(opened.ok()) << opened.status().ToString();
  std::unique_ptr<ordb::Database> db = std::move(*opened);
  EXPECT_TRUE(db->Execute("CREATE TABLE t (a INTEGER, b VARCHAR)").ok());
  EXPECT_TRUE(db->Execute("INSERT INTO t VALUES (1, 'one')").ok());
  EXPECT_TRUE(db->Execute("INSERT INTO t VALUES (2, 'two')").ok());
  EXPECT_TRUE(db->Execute("INSERT INTO t VALUES (3, 'three')").ok());
  EXPECT_TRUE(db->Execute("CREATE TABLE many (a INTEGER)").ok());
  for (int i = 0; i < kManyRows; ++i) {
    EXPECT_TRUE(
        db->Execute("INSERT INTO many VALUES (" + std::to_string(i) + ")")
            .ok());
  }
  ordb::ScalarFunction snooze;
  snooze.name = "snooze";
  snooze.return_type = ordb::TypeId::kInteger;
  snooze.arity = 1;
  snooze.impl =
      [](const std::vector<ordb::Value>& args) -> Result<ordb::Value> {
    std::this_thread::sleep_for(std::chrono::milliseconds(kSnoozeMillis));
    return args[0];
  };
  EXPECT_TRUE(db->functions()->RegisterScalar(std::move(snooze)).ok());
  return db;
}

ClientOptions ClientFor(const Server& srv, int max_retries = 0) {
  ClientOptions options;
  options.port = srv.port();
  options.max_retries = max_retries;
  options.backoff_base_millis = 2;
  options.backoff_max_millis = 50;
  return options;
}

std::optional<std::string> FindRow(const server::StatsPayload& stats,
                                   const std::string& name) {
  for (const auto& [key, value] : stats.rows) {
    if (key == name) return value;
  }
  return std::nullopt;
}

// -- Round trips. -----------------------------------------------------------

TEST(ServerTest, QueryRoundTripMatchesDirect) {
  auto db = MakeDb();
  auto started = Server::Start(db.get());
  ASSERT_TRUE(started.ok()) << started.status().ToString();
  std::unique_ptr<Server> srv = std::move(*started);

  const std::string sql = "SELECT a, b FROM t";
  auto direct = db->Query(sql);
  ASSERT_TRUE(direct.ok()) << direct.status().ToString();

  Client client(ClientFor(*srv));
  auto remote = client.Query(sql);
  ASSERT_TRUE(remote.ok()) << remote.status().ToString();
  ASSERT_EQ(remote->columns, direct->columns);
  ASSERT_EQ(remote->rows.size(), direct->rows.size());
  for (size_t r = 0; r < direct->rows.size(); ++r) {
    ASSERT_EQ(remote->rows[r].size(), direct->rows[r].size());
    for (size_t c = 0; c < direct->rows[r].size(); ++c) {
      EXPECT_EQ(remote->rows[r][c], direct->rows[r][c].ToString());
    }
  }

  const ServerStats stats = srv->server_stats();
  EXPECT_EQ(stats.statements_admitted, 1u);
  EXPECT_EQ(stats.statements_ok, 1u);
  EXPECT_EQ(stats.statements_error, 0u);
}

TEST(ServerTest, ExecuteAppliesMutationsAndErrorsTravelTheWire) {
  auto db = MakeDb();
  auto started = Server::Start(db.get());
  ASSERT_TRUE(started.ok()) << started.status().ToString();
  std::unique_ptr<Server> srv = std::move(*started);

  Client client(ClientFor(*srv));
  ASSERT_TRUE(client.Execute("INSERT INTO t VALUES (4, 'four')").ok());
  auto count = client.Query("SELECT COUNT(*) AS n FROM t");
  ASSERT_TRUE(count.ok()) << count.status().ToString();
  ASSERT_EQ(count->rows.size(), 1u);
  EXPECT_EQ(count->rows[0][0], "4");

  // A statement error comes back as a decoded, non-retryable Status with
  // its message intact — not a dead connection.
  auto bad = client.Query("SELECT a FROM no_such_table");
  ASSERT_FALSE(bad.ok());
  EXPECT_FALSE(bad.status().IsRetryable()) << bad.status().ToString();
  EXPECT_FALSE(bad.status().message().empty());

  // The connection survived the error; the next statement works.
  auto again = client.Query("SELECT a FROM t");
  EXPECT_TRUE(again.ok()) << again.status().ToString();
}

// -- Admission control. -----------------------------------------------------

TEST(ServerTest, ConnectionCapRejectsFastWithRetryableHint) {
  auto db = MakeDb();
  ServerOptions options;
  options.max_connections = 1;
  options.retry_after_millis = 37;
  auto started = Server::Start(db.get(), options);
  ASSERT_TRUE(started.ok()) << started.status().ToString();
  std::unique_ptr<Server> srv = std::move(*started);

  Client first(ClientFor(*srv));
  ASSERT_TRUE(first.Query("SELECT a FROM t").ok());

  // The second connection is turned away at the cap with the retryable
  // admission status and the configured hint.
  Client second(ClientFor(*srv, /*max_retries=*/0));
  auto rejected = second.Query("SELECT a FROM t");
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kResourceExhausted)
      << rejected.status().ToString();
  EXPECT_TRUE(rejected.status().IsRetryable());
  EXPECT_EQ(rejected.status().retry_after_millis(), 37u);
  EXPECT_GE(srv->server_stats().connections_rejected, 1u);

  // The retry loop rides out the rejection: a third client with retries
  // enabled succeeds once the first connection goes away.
  Client third(ClientFor(*srv, /*max_retries=*/8));
  std::thread releaser([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    first.Disconnect();
  });
  auto eventually = third.Query("SELECT a FROM t");
  releaser.join();
  EXPECT_TRUE(eventually.ok()) << eventually.status().ToString();
}

TEST(ServerTest, QueueCapRejectsAndQueueWaitCountsAgainstTheDeadline) {
  auto db = MakeDb();

  // A gate UDF that blocks its statement until the test releases it (the
  // 10 s timeout turns a wedged test into a clean failure).
  struct Gate {
    std::mutex mu;
    std::condition_variable cv;
    bool open = false;
  };
  auto gate = std::make_shared<Gate>();
  ordb::ScalarFunction fn;
  fn.name = "gate";
  fn.return_type = ordb::TypeId::kInteger;
  fn.arity = 1;
  fn.impl =
      [gate](const std::vector<ordb::Value>& args) -> Result<ordb::Value> {
    std::unique_lock<std::mutex> lock(gate->mu);
    if (!gate->cv.wait_for(lock, std::chrono::seconds(10),
                           [&gate] { return gate->open; })) {
      return Status::Internal("gate timed out");
    }
    return args[0];
  };
  ASSERT_TRUE(db->functions()->RegisterScalar(std::move(fn)).ok());

  ServerOptions options;
  options.worker_threads = 1;
  options.max_queue_depth = 1;
  options.retry_after_millis = 11;
  auto started = Server::Start(db.get(), options);
  ASSERT_TRUE(started.ok()) << started.status().ToString();
  std::unique_ptr<Server> srv = std::move(*started);

  // First statement occupies the only worker inside the gate.
  std::thread blocked([&] {
    Client client(ClientFor(*srv));
    auto r = client.Query("SELECT gate(a) FROM t");
    EXPECT_TRUE(r.ok()) << r.status().ToString();
  });
  ASSERT_TRUE(PollUntil(
      [&] {
        const ServerStats s = srv->server_stats();
        return s.statements_admitted == 1 && s.queue_depth == 0;
      },
      5000))
      << "first statement never reached the worker";

  // Second statement fills the queue (depth 1 = the cap) with a 60 ms
  // deadline that will expire while it waits.
  std::thread queued([&] {
    Client client(ClientFor(*srv));
    CallOptions call;
    call.deadline_millis = 60;
    auto r = client.Query("SELECT a FROM t", call);
    EXPECT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), StatusCode::kDeadlineExceeded)
        << r.status().ToString();
    // The rejection names the queue: the statement died waiting, and the
    // server answered without touching the engine.
    EXPECT_NE(r.status().message().find("admission queue"), std::string::npos)
        << r.status().message();
  });
  ASSERT_TRUE(
      PollUntil([&] { return srv->server_stats().queue_depth == 1; }, 5000))
      << "second statement never queued";

  // Third statement finds the queue full: fast kResourceExhausted with the
  // retry-after hint, no queuing into collapse.
  Client overflow(ClientFor(*srv, /*max_retries=*/0));
  auto rejected = overflow.Query("SELECT a FROM t");
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kResourceExhausted)
      << rejected.status().ToString();
  EXPECT_TRUE(rejected.status().IsRetryable());
  EXPECT_EQ(rejected.status().retry_after_millis(), 11u);

  // Hold the gate past the queued statement's deadline, then release.
  std::this_thread::sleep_for(std::chrono::milliseconds(80));
  {
    std::lock_guard<std::mutex> lock(gate->mu);
    gate->open = true;
  }
  gate->cv.notify_all();
  blocked.join();
  queued.join();

  const ServerStats stats = srv->server_stats();
  EXPECT_EQ(stats.statements_rejected_queue, 1u);
  EXPECT_EQ(stats.peak_queue_depth, 1u);
  EXPECT_EQ(stats.statements_admitted, 2u);
  EXPECT_EQ(stats.statements_ok + stats.statements_error, 2u);
}

TEST(ServerTest, DeadlinePropagatesIntoTheEngine) {
  auto db = MakeDb();
  auto started = Server::Start(db.get());
  ASSERT_TRUE(started.ok()) << started.status().ToString();
  std::unique_ptr<Server> srv = std::move(*started);

  // The slow scan needs ~kManyRows * kSnoozeMillis = 600 ms; a 50 ms frame
  // deadline must stop it at a guard checkpoint long before that.
  Client client(ClientFor(*srv));
  CallOptions call;
  call.deadline_millis = 50;
  const auto before = std::chrono::steady_clock::now();
  auto r = client.Query(kSlowSql, call);
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
                           std::chrono::steady_clock::now() - before)
                           .count();
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kDeadlineExceeded)
      << r.status().ToString();
  EXPECT_LT(elapsed, kManyRows * kSnoozeMillis / 2)
      << "deadline did not interrupt the scan";
  EXPECT_EQ(db->buffer_pool()->PinnedFrameCount(), 0u);
}

// -- Disconnect cancellation. -----------------------------------------------

TEST(ServerTest, DisconnectMidQueryCancelsTheStatement) {
  auto db = MakeDb();
  auto started = Server::Start(db.get());
  ASSERT_TRUE(started.ok()) << started.status().ToString();
  std::unique_ptr<Server> srv = std::move(*started);

  // Raw socket: send the slow query, then vanish without reading the
  // response. The connection thread's disconnect probe must fire
  // Database::Cancel instead of burning a worker for nobody.
  {
    auto connected = server::Connect("127.0.0.1", srv->port(),
                                     server::Deadline::After(1000));
    ASSERT_TRUE(connected.ok()) << connected.status().ToString();
    server::Socket socket = std::move(*connected);
    server::QueryRequest request;
    request.sql = kSlowSql;
    ASSERT_TRUE(
        server::WriteFull(
            socket,
            server::EncodeQueryRequest(server::FrameType::kQuery, request),
            server::Deadline::After(1000))
            .ok());
    ASSERT_TRUE(PollUntil(
        [&] { return srv->server_stats().statements_admitted >= 1; }, 5000));
  }  // socket closes here, mid-query

  EXPECT_TRUE(PollUntil(
      [&] { return srv->server_stats().cancelled_on_disconnect == 1; }, 5000))
      << "disconnect was never noticed";
  // The statement terminates (cancelled counts as an error) and leaves the
  // engine quiescent.
  EXPECT_TRUE(PollUntil(
      [&] {
        const ServerStats s = srv->server_stats();
        return s.statements_ok + s.statements_error == s.statements_admitted;
      },
      10000))
      << "cancelled statement never terminated";
  EXPECT_TRUE(PollUntil(
      [&] { return db->buffer_pool()->PinnedFrameCount() == 0; }, 5000));
}

TEST(ServerTest, CancelReachesAcrossConnections) {
  auto db = MakeDb();
  auto started = Server::Start(db.get());
  ASSERT_TRUE(started.ok()) << started.status().ToString();
  std::unique_ptr<Server> srv = std::move(*started);

  constexpr uint64_t kQueryId = 42;
  std::thread victim([&] {
    Client client(ClientFor(*srv));
    CallOptions call;
    call.query_id = kQueryId;
    auto r = client.Query(kSlowSql, call);
    EXPECT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), StatusCode::kCancelled)
        << r.status().ToString();
  });

  Client canceller(ClientFor(*srv));
  // Unknown ids answer kNotFound — the canceller can tell "already gone"
  // from "landed".
  Status miss = canceller.Cancel(9999);
  EXPECT_EQ(miss.code(), StatusCode::kNotFound) << miss.ToString();

  // Spin until the victim's statement is registered, then cancel it.
  ASSERT_TRUE(PollUntil(
      [&] {
        Status s = canceller.Cancel(kQueryId);
        return s.ok();
      },
      5000))
      << "cancel never found the statement";
  victim.join();
  EXPECT_EQ(db->buffer_pool()->PinnedFrameCount(), 0u);
}

// -- Graceful degradation. --------------------------------------------------

TEST(ServerTest, ReadOnlyEngineShedsWritesWithStateDetailAndHint) {
  auto db = MakeDb();
  auto started = Server::Start(db.get());
  ASSERT_TRUE(started.ok()) << started.status().ToString();
  std::unique_ptr<Server> srv = std::move(*started);

  db->health()->ReportReadOnly("wal device gone");

  // The mutation is shed at admission; the health latch's own status rides
  // the wire — state name, latched detail, retry-after hint — so the
  // remote backoff layer sees exactly what an embedded caller would.
  Client client(ClientFor(*srv, /*max_retries=*/0));
  Status shed = client.Execute("INSERT INTO t VALUES (9, 'nine')");
  ASSERT_FALSE(shed.ok());
  EXPECT_EQ(shed.code(), StatusCode::kUnavailable) << shed.ToString();
  EXPECT_TRUE(shed.IsRetryable());
  EXPECT_EQ(shed.retry_after_millis(),
            ordb::EngineHealth::kReadOnlyRetryAfterMillis);
  EXPECT_NE(shed.message().find("ReadOnly"), std::string::npos)
      << shed.message();
  EXPECT_NE(shed.message().find("wal device gone"), std::string::npos)
      << shed.message();

  // Reads still serve, and STATS advertises the degraded state alongside
  // the shed counter.
  EXPECT_TRUE(client.Query("SELECT a FROM t").ok());
  auto stats = client.Stats();
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(FindRow(*stats, "health").value_or(""), "ReadOnly");
  EXPECT_EQ(FindRow(*stats, "health_detail").value_or(""), "wal device gone");
  EXPECT_EQ(FindRow(*stats, "server_statements_shed_readonly").value_or(""),
            "1");

  // Recovery re-arms writes end to end.
  EXPECT_TRUE(db->health()->Recover());
  EXPECT_TRUE(client.Execute("INSERT INTO t VALUES (9, 'nine')").ok());
}

// -- Hostile bytes. ---------------------------------------------------------

TEST(ServerTest, MalformedFramesGetCleanErrorsAndAreCounted) {
  auto db = MakeDb();
  auto started = Server::Start(db.get());
  ASSERT_TRUE(started.ok()) << started.status().ToString();
  std::unique_ptr<Server> srv = std::move(*started);

  // Garbage bytes: the server answers one kParseError frame, then closes.
  {
    auto connected = server::Connect("127.0.0.1", srv->port(),
                                     server::Deadline::After(1000));
    ASSERT_TRUE(connected.ok()) << connected.status().ToString();
    server::Socket socket = std::move(*connected);
    ASSERT_TRUE(server::WriteFull(socket, "GARBAGEGARBAGE",
                                  server::Deadline::After(1000))
                    .ok());
    std::string header_bytes;
    ASSERT_TRUE(server::ReadFull(socket, &header_bytes,
                                 server::kFrameHeaderBytes,
                                 server::Deadline::After(2000))
                    .ok());
    auto header = server::DecodeFrameHeader(header_bytes);
    ASSERT_TRUE(header.ok()) << header.status().ToString();
    ASSERT_EQ(header->type, server::FrameType::kError);
    std::string payload;
    ASSERT_TRUE(server::ReadFull(socket, &payload, header->payload_bytes,
                                 server::Deadline::After(2000))
                    .ok());
    auto error = server::DecodeError(payload);
    ASSERT_TRUE(error.ok()) << error.status().ToString();
    const Status status = server::StatusFromError(*error);
    EXPECT_EQ(status.code(), StatusCode::kParseError) << status.ToString();
  }

  // A header that promises a payload and never delivers it: counted as
  // malformed once the truncation surfaces.
  {
    auto connected = server::Connect("127.0.0.1", srv->port(),
                                     server::Deadline::After(1000));
    ASSERT_TRUE(connected.ok()) << connected.status().ToString();
    server::Socket socket = std::move(*connected);
    server::CancelRequest cancel;
    cancel.query_id = 1;
    std::string frame = server::EncodeCancelRequest(cancel);
    frame.resize(server::kFrameHeaderBytes + 2);  // truncate the payload
    ASSERT_TRUE(
        server::WriteFull(socket, frame, server::Deadline::After(1000)).ok());
  }  // close mid-frame

  EXPECT_TRUE(PollUntil(
      [&] { return srv->server_stats().malformed_frames >= 2; }, 5000))
      << "malformed frames not counted: "
      << srv->server_stats().malformed_frames;

  // The server is unharmed: a well-formed client still gets answers.
  Client client(ClientFor(*srv));
  EXPECT_TRUE(client.Query("SELECT a FROM t").ok());
}

// -- Hostile-peer client behavior. ------------------------------------------

/// A minimal hostile peer for exercising the client's failure handling:
/// accepts one connection at a time, reads one request frame, then writes
/// `reply` (possibly nothing) and closes — so the client always sees the
/// request delivered and the response lost or malformed.
class FakePeer {
 public:
  explicit FakePeer(std::string reply = "") : reply_(std::move(reply)) {
    auto listener = server::Listen(0, 8);
    EXPECT_TRUE(listener.ok()) << listener.status().ToString();
    listener_ = std::move(*listener);
    auto port = server::BoundPort(listener_);
    EXPECT_TRUE(port.ok()) << port.status().ToString();
    port_ = *port;
    thread_ = std::thread([this] { Loop(); });
  }
  ~FakePeer() {
    stop_.store(true);
    thread_.join();
  }
  uint16_t port() const { return port_; }
  int accepted() const { return accepted_.load(); }

 private:
  void Loop() {
    while (!stop_.load()) {
      auto conn = server::Accept(listener_, server::Deadline::After(50));
      if (!conn.ok()) {
        conn.status().IgnoreError();
        continue;
      }
      ++accepted_;
      server::Socket socket = std::move(*conn);
      std::string header_bytes;
      Status read = server::ReadFull(socket, &header_bytes,
                                     server::kFrameHeaderBytes,
                                     server::Deadline::After(2000));
      if (read.ok()) {
        auto header = server::DecodeFrameHeader(header_bytes);
        if (header.ok()) {
          std::string payload;
          XO_DISCARD_STATUS(
              server::ReadFull(socket, &payload, header->payload_bytes,
                               server::Deadline::After(2000)),
              "the peer closes the connection either way");
        } else {
          header.status().IgnoreError();
        }
      }
      if (!reply_.empty()) {
        XO_DISCARD_STATUS(
            server::WriteFull(socket, reply_, server::Deadline::After(2000)),
            "test peer; the client-side outcome is what is asserted");
      }
    }  // the socket closes here, mid-conversation
  }

  const std::string reply_;
  server::Socket listener_;
  uint16_t port_ = 0;
  std::thread thread_;
  std::atomic<bool> stop_{false};
  std::atomic<int> accepted_{0};
};

TEST(ServerTest, ExecuteIsNotRetriedAfterDeliveryUnlessIdempotent) {
  FakePeer peer;  // reads the request, never answers

  ClientOptions options;
  options.port = peer.port();
  options.max_retries = 2;
  options.backoff_base_millis = 1;
  options.backoff_max_millis = 4;

  {
    // Default EXECUTE: the request was delivered and the response lost —
    // the statement may already have executed, so the client must not
    // blindly re-send the mutation. One connection = one attempt.
    Client client(options);
    Status status = client.Execute("INSERT INTO t VALUES (9, 'nine')");
    EXPECT_EQ(status.code(), StatusCode::kUnavailable) << status.ToString();
    EXPECT_NE(status.message().find("may have executed"), std::string::npos)
        << status.message();
    EXPECT_EQ(peer.accepted(), 1) << "non-idempotent EXECUTE was re-sent";
  }
  {
    // Opting in restores the retry loop; every attempt reconnects.
    const int before = peer.accepted();
    Client client(options);
    CallOptions call;
    call.idempotent = true;
    Status status = client.Execute("INSERT INTO t VALUES (9, 'nine')", call);
    EXPECT_EQ(status.code(), StatusCode::kUnavailable) << status.ToString();
    EXPECT_EQ(peer.accepted() - before, 1 + options.max_retries);
  }
  {
    // Query is idempotent by nature and keeps the retry loop.
    const int before = peer.accepted();
    Client client(options);
    auto result = client.Query("SELECT a FROM t");
    EXPECT_FALSE(result.ok());
    EXPECT_EQ(result.status().code(), StatusCode::kUnavailable);
    EXPECT_EQ(peer.accepted() - before, 1 + options.max_retries);
  }
}

TEST(ServerTest, ClientDropsItsConnectionOnAGarbageResponseHeader) {
  // The peer answers with bytes that fail header decode: the client must
  // drop the desynced connection (like every other failure path) so the
  // next call reconnects instead of misparsing the leftover stream.
  FakePeer peer(std::string(server::kFrameHeaderBytes, 'Z'));

  ClientOptions options;
  options.port = peer.port();
  options.max_retries = 2;
  Client client(options);
  auto result = client.Query("SELECT a FROM t");
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kParseError)
      << result.status().ToString();
  EXPECT_FALSE(client.connected());
  // Parse errors are not retryable: exactly one attempt was made.
  EXPECT_EQ(peer.accepted(), 1);
}

// -- Response frames always fit the payload cap. ----------------------------

TEST(ServerProtocolTest, OversizeErrorMessageIsTruncatedToAFrameableFrame) {
  server::ErrorPayload error;
  error.code = static_cast<uint8_t>(StatusCode::kInternal);
  error.retry_after_millis = 7;
  error.message.assign(server::kMaxPayloadBytes + 1024, 'x');
  const std::string frame = server::EncodeError(error);
  auto header = server::DecodeFrameHeader(
      std::string_view(frame).substr(0, server::kFrameHeaderBytes));
  ASSERT_TRUE(header.ok()) << header.status().ToString();
  EXPECT_EQ(header->type, server::FrameType::kError);
  EXPECT_LE(header->payload_bytes, server::kMaxPayloadBytes);
  auto decoded = server::DecodeError(
      std::string_view(frame).substr(server::kFrameHeaderBytes));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->code, error.code);
  EXPECT_EQ(decoded->retry_after_millis, 7u);
  EXPECT_LT(decoded->message.size(), error.message.size());
  EXPECT_GT(decoded->message.size(), 0u);
}

TEST(ServerProtocolTest, OversizeStatsDropTailRowsButStayFrameable) {
  server::StatsPayload stats;
  const std::string big(1u << 20, 'v');
  for (int i = 0; i < 8; ++i) {
    std::string key = "k";
    key += std::to_string(i);
    stats.rows.emplace_back(std::move(key), big);
  }
  const std::string frame = server::EncodeStats(stats);
  auto header = server::DecodeFrameHeader(
      std::string_view(frame).substr(0, server::kFrameHeaderBytes));
  ASSERT_TRUE(header.ok()) << header.status().ToString();
  EXPECT_EQ(header->type, server::FrameType::kStatsResult);
  EXPECT_LE(header->payload_bytes, server::kMaxPayloadBytes);
  auto decoded = server::DecodeStats(
      std::string_view(frame).substr(server::kFrameHeaderBytes));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  // The head rows survive in order; the tail was dropped, not mangled.
  ASSERT_LT(decoded->rows.size(), stats.rows.size());
  ASSERT_GT(decoded->rows.size(), 0u);
  for (size_t i = 0; i < decoded->rows.size(); ++i) {
    EXPECT_EQ(decoded->rows[i].first, stats.rows[i].first);
    EXPECT_EQ(decoded->rows[i].second, stats.rows[i].second);
  }
}

// -- Shutdown. --------------------------------------------------------------

TEST(ServerTest, StartFailsCleanlyWhenThePortIsTaken) {
  auto db = MakeDb();
  auto started = Server::Start(db.get());
  ASSERT_TRUE(started.ok()) << started.status().ToString();
  std::unique_ptr<Server> srv = std::move(*started);

  // Binding the same fixed port must surface the listen error as a Result.
  // Destroying the half-started server on that path runs ~Server →
  // Shutdown() before any thread was spawned; joining the unstarted
  // acceptor would std::terminate the process.
  ServerOptions taken;
  taken.port = srv->port();
  auto second = Server::Start(db.get(), taken);
  EXPECT_FALSE(second.ok());

  // The winner is unaffected.
  Client client(ClientFor(*srv));
  EXPECT_TRUE(client.Query("SELECT a FROM t").ok());
}

TEST(ServerTest, ShutdownDrainsInFlightStatements) {
  auto db = MakeDb();
  auto started = Server::Start(db.get());
  ASSERT_TRUE(started.ok()) << started.status().ToString();
  std::unique_ptr<Server> srv = std::move(*started);

  // A statement admitted before Shutdown must complete and deliver its
  // response through the drain window.
  std::thread in_flight([&] {
    Client client(ClientFor(*srv));
    auto r = client.Query(kSlowSql);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_EQ(r->rows.size(), static_cast<size_t>(kManyRows));
  });
  ASSERT_TRUE(PollUntil(
      [&] { return srv->server_stats().statements_admitted >= 1; }, 5000));

  srv->Shutdown();
  in_flight.join();

  // Idempotent, and the counters remain readable after the fact.
  srv->Shutdown();
  const ServerStats stats = srv->server_stats();
  EXPECT_EQ(stats.statements_ok, 1u);
  EXPECT_EQ(stats.active_connections, 0u);

  // The listener is gone: new connections fail instead of hanging.
  Client late(ClientFor(*srv, /*max_retries=*/0));
  EXPECT_FALSE(late.Query("SELECT a FROM t").ok());
}

// -- The server chaos soak (the chaos-soak CI job's server leg). ------------

class ServerSoakTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    datagen::ShakespeareOptions opts;
    opts.plays = 2;
    opts.acts_per_play = 2;
    opts.scenes_per_act = 2;
    opts.speeches_per_scene = 5;
    corpus_ = new std::vector<std::unique_ptr<xml::Node>>(
        datagen::ShakespeareGenerator(opts).GenerateCorpus());
    std::vector<const xml::Node*> docs;
    for (const auto& d : *corpus_) docs.push_back(d.get());
    benchutil::ExperimentOptions options;
    options.mapping = benchutil::Mapping::kHybrid;
    auto built =
        benchutil::BuildExperimentDb(datagen::kShakespeareDtd, docs, options);
    ASSERT_TRUE(built.ok()) << built.status().ToString();
    db_ = new benchutil::ExperimentDb(std::move(*built));
  }

  static void TearDownTestSuite() {
    delete db_;
    db_ = nullptr;
    delete corpus_;
    corpus_ = nullptr;
  }

  static std::vector<std::unique_ptr<xml::Node>>* corpus_;
  static benchutil::ExperimentDb* db_;
};

std::vector<std::unique_ptr<xml::Node>>* ServerSoakTest::corpus_ = nullptr;
benchutil::ExperimentDb* ServerSoakTest::db_ = nullptr;

/// Failure codes a soak client may legitimately see: admission rejection,
/// transport/readonly kUnavailable, a deadline it set itself, its own (or
/// shutdown's) cancellation.
bool IsSoakCode(StatusCode code) {
  switch (code) {
    case StatusCode::kResourceExhausted:
    case StatusCode::kUnavailable:
    case StatusCode::kDeadlineExceeded:
    case StatusCode::kCancelled:
      return true;
    default:
      return false;
  }
}

TEST_F(ServerSoakTest, HostileMixedLoadKeepsEveryInvariant) {
  const uint64_t threads = EnvOr("XO_SERVER_SOAK_THREADS", 6);
  const uint64_t ops = EnvOr("XO_SERVER_SOAK_OPS", 40);
  const uint64_t seed = EnvOr("XO_SERVER_SOAK_SEED", 20260808);
  SCOPED_TRACE("replay: XO_SERVER_SOAK_SEED=" + std::to_string(seed) +
               " XO_SERVER_SOAK_THREADS=" + std::to_string(threads) +
               " XO_SERVER_SOAK_OPS=" + std::to_string(ops));

  ordb::Database* db = db_->db.get();
  ASSERT_TRUE(
      db->Execute("CREATE TABLE soak_scratch (a INTEGER, b VARCHAR)").ok());

  // Deliberately small caps so the soak actually exercises the rejection
  // paths: more client threads than workers, a shallow queue.
  ServerOptions options;
  options.max_connections = threads + 2;
  options.worker_threads = 3;
  options.max_queue_depth = 4;
  options.retry_after_millis = 5;
  auto started = Server::Start(db, options);
  ASSERT_TRUE(started.ok()) << started.status().ToString();
  std::unique_ptr<Server> srv = std::move(*started);

  std::vector<std::string> mix;
  for (const auto& q : benchutil::ShakespeareQueries()) {
    mix.push_back(q.hybrid_sql);
  }
  ASSERT_FALSE(mix.empty());

  std::atomic<int> unexpected{0};
  std::mutex first_mu;
  std::string first_unexpected;
  auto flag_unexpected = [&](const Status& status, const char* what) {
    unexpected.fetch_add(1, std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(first_mu);
    if (first_unexpected.empty()) {
      first_unexpected = std::string(what) + ": " + status.ToString();
    }
  };

  // Health states observed over the wire. With no fault injection the
  // engine may only ever be Healthy or (while the flipper holds the latch)
  // ReadOnly — Degraded/Failed appearing here means the server load itself
  // damaged the engine.
  std::mutex seen_mu;
  std::set<std::string> seen_health;

  std::atomic<bool> stop_aux{false};

  // The health flipper: latch the engine read-only mid-soak, hold it, then
  // recover — mutations fired into the window must come back as the shed
  // kUnavailable, and the soak must end writable.
  std::thread flipper([&] {
    for (int cycle = 0; cycle < 3 && !stop_aux.load(); ++cycle) {
      std::this_thread::sleep_for(std::chrono::milliseconds(40));
      db->health()->ReportReadOnly("soak flip " + std::to_string(cycle));
      std::this_thread::sleep_for(std::chrono::milliseconds(40));
      EXPECT_TRUE(db->health()->Recover());
    }
  });

  // The monitor: admission bounds must hold at every instant, not just at
  // the end.
  std::thread monitor([&] {
    while (!stop_aux.load(std::memory_order_relaxed)) {
      const ServerStats s = srv->server_stats();
      EXPECT_LE(s.queue_depth, options.max_queue_depth);
      EXPECT_LE(s.active_connections, options.max_connections);
      std::this_thread::sleep_for(std::chrono::milliseconds(3));
    }
  });

  std::vector<std::thread> clients;
  clients.reserve(threads);
  for (uint64_t t = 0; t < threads; ++t) {
    clients.emplace_back([&, t] {
      std::mt19937_64 rng(seed + t);
      ClientOptions copts = ClientFor(*srv, /*max_retries=*/1);
      copts.rng_seed = seed + t;
      Client client(std::move(copts));
      for (uint64_t op = 0; op < ops; ++op) {
        const uint64_t kind = rng() % 10;
        if (kind < 5) {
          // The paper's query mix, sometimes under a tight deadline.
          CallOptions call;
          if (rng() % 4 == 0) call.deadline_millis = 1 + rng() % 30;
          auto r = client.Query(mix[rng() % mix.size()], call);
          if (!r.ok() && !IsSoakCode(r.status().code())) {
            flag_unexpected(r.status(), "query");
          }
        } else if (kind < 7) {
          // Bulk-load shaped writes (shed cleanly in read-only windows).
          Status s = client.Execute(
              "INSERT INTO soak_scratch VALUES (" + std::to_string(op) +
              ", 'thread " + std::to_string(t) + "')");
          if (!s.ok() && !IsSoakCode(s.code())) {
            flag_unexpected(s, "insert");
          }
        } else if (kind == 7) {
          auto stats = client.Stats();
          if (!stats.ok()) {
            if (!IsSoakCode(stats.status().code())) {
              flag_unexpected(stats.status(), "stats");
            }
          } else {
            std::lock_guard<std::mutex> lock(seen_mu);
            seen_health.insert(FindRow(*stats, "health").value_or("missing"));
          }
        } else if (kind == 8) {
          // Vanish mid-conversation; the next op reconnects.
          client.Disconnect();
        } else {
          // A hostile peer: garbage bytes, then gone.
          auto connected = server::Connect("127.0.0.1", srv->port(),
                                           server::Deadline::After(500));
          if (connected.ok()) {
            XO_DISCARD_STATUS(
                server::WriteFull(*connected, "\xff\xff junk frame",
                                  server::Deadline::After(500)),
                "hostile peer does not care");
          } else {
            // Accept-queue pressure may turn the connect away; that is the
            // admission control working.
            connected.status().IgnoreError();
          }
        }
      }
    });
  }
  for (std::thread& c : clients) c.join();
  stop_aux.store(true);
  flipper.join();
  monitor.join();

  EXPECT_EQ(unexpected.load(), 0) << first_unexpected;

  // Every admitted statement terminates: the ok/error counters catch up to
  // admissions once the workers finish the tail.
  EXPECT_TRUE(PollUntil(
      [&] {
        const ServerStats s = srv->server_stats();
        return s.statements_ok + s.statements_error == s.statements_admitted;
      },
      10000))
      << "admitted statements leaked";

  const ServerStats stats = srv->server_stats();
  EXPECT_GT(stats.statements_admitted, 0u);
  EXPECT_LE(stats.peak_queue_depth, options.max_queue_depth);

  // Health monotonicity: only the states the flipper itself induced.
  {
    std::lock_guard<std::mutex> lock(seen_mu);
    for (const std::string& state : seen_health) {
      EXPECT_TRUE(state == "Healthy" || state == "ReadOnly")
          << "unexpected health state over the wire: " << state;
    }
  }
  EXPECT_EQ(db->health()->state(), ordb::HealthState::kHealthy);

  // Quiescence: no leaked pins, and a clean shutdown on a soaked server.
  EXPECT_TRUE(PollUntil(
      [&] { return db->buffer_pool()->PinnedFrameCount() == 0; }, 5000));
  srv->Shutdown();
  EXPECT_EQ(srv->server_stats().active_connections, 0u);
  EXPECT_TRUE(db->Query("SELECT COUNT(*) AS n FROM soak_scratch").ok());
}

}  // namespace
}  // namespace xorator
