#include <gtest/gtest.h>

#include "benchutil/fixture.h"
#include "datagen/dtds.h"
#include "shred/loader.h"
#include "shred/shredder.h"
#include "xadt/xadt.h"
#include "xml/parser.h"

namespace xorator::shred {
namespace {

using benchutil::MapDtd;
using benchutil::Mapping;
using ordb::Tuple;
using ordb::TypeId;
using ordb::Value;

constexpr char kPlayDoc[] = R"(
<PLAY>
  <INDUCT>
    <TITLE>Induction</TITLE>
    <SUBTITLE>sub one</SUBTITLE>
    <SCENE>
      <TITLE>Scene i</TITLE>
      <SPEECH><SPEAKER>s1</SPEAKER><LINE>l1</LINE></SPEECH>
    </SCENE>
  </INDUCT>
  <ACT>
    <SCENE>
      <TITLE>Scene a</TITLE>
      <SPEECH>
        <SPEAKER>s1</SPEAKER><SPEAKER>s2</SPEAKER>
        <LINE>first line</LINE><LINE>second line</LINE>
      </SPEECH>
      <SUBHEAD>head</SUBHEAD>
    </SCENE>
    <TITLE>Act One</TITLE>
    <SUBTITLE>alpha</SUBTITLE>
    <SUBTITLE>beta</SUBTITLE>
    <SPEECH><SPEAKER>s3</SPEAKER><LINE>act line</LINE></SPEECH>
    <PROLOGUE>pro</PROLOGUE>
  </ACT>
</PLAY>
)";

const Tuple* FindRow(const std::vector<Tuple>& rows, int id_col, int64_t id) {
  for (const Tuple& row : rows) {
    if (row[id_col].AsInt() == id) return &row;
  }
  return nullptr;
}

class ShredPlaysTest : public ::testing::Test {
 protected:
  void Shred(Mapping mapping, bool compress = false) {
    auto schema = MapDtd(datagen::kPlaysDtd, mapping);
    ASSERT_TRUE(schema.ok()) << schema.status().ToString();
    schema_ = std::move(*schema);
    auto doc = xml::ParseDocument(kPlayDoc);
    ASSERT_TRUE(doc.ok()) << doc.status().ToString();
    Shredder shredder(&schema_, compress);
    batch_.clear();
    ASSERT_TRUE(shredder.Shred(*doc->root, &batch_).ok());
  }

  int Col(const std::string& table, const std::string& column) {
    const mapping::TableSpec* spec = schema_.FindTable(table);
    EXPECT_NE(spec, nullptr) << table;
    int idx = spec->ColumnIndex(column);
    EXPECT_GE(idx, 0) << table << "." << column;
    return idx;
  }

  mapping::MappedSchema schema_;
  RowBatch batch_;
};

TEST_F(ShredPlaysTest, HybridRowCounts) {
  Shred(Mapping::kHybrid);
  EXPECT_EQ(batch_["play"].size(), 1u);
  EXPECT_EQ(batch_["induct"].size(), 1u);
  EXPECT_EQ(batch_["act"].size(), 1u);
  EXPECT_EQ(batch_["scene"].size(), 2u);
  EXPECT_EQ(batch_["speech"].size(), 3u);
  EXPECT_EQ(batch_["speaker"].size(), 4u);
  EXPECT_EQ(batch_["line"].size(), 4u);
  EXPECT_EQ(batch_["subtitle"].size(), 3u);
  EXPECT_EQ(batch_["subhead"].size(), 1u);
}

TEST_F(ShredPlaysTest, HybridParentLinksAndCodes) {
  Shred(Mapping::kHybrid);
  // The induct scene's parent is the induct; the act scene's parent the act.
  int scene_parent = Col("scene", "scene_parentID");
  int scene_code = Col("scene", "scene_parentCODE");
  int scene_id = Col("scene", "sceneID");
  const Tuple* s1 = FindRow(batch_["scene"], scene_id, 1);
  const Tuple* s2 = FindRow(batch_["scene"], scene_id, 2);
  ASSERT_NE(s1, nullptr);
  ASSERT_NE(s2, nullptr);
  EXPECT_EQ((*s1)[scene_code].AsString(), "INDUCT");
  EXPECT_EQ((*s2)[scene_code].AsString(), "ACT");
  EXPECT_EQ((*s1)[scene_parent].AsInt(), 1);
  EXPECT_EQ((*s2)[scene_parent].AsInt(), 1);

  // Speeches: one under the induct scene, one under the act scene, one
  // directly under the act.
  int speech_code = Col("speech", "speech_parentCODE");
  std::multiset<std::string> codes;
  for (const Tuple& row : batch_["speech"]) {
    codes.insert(row[speech_code].AsString());
  }
  EXPECT_EQ(codes, (std::multiset<std::string>{"ACT", "SCENE", "SCENE"}));
}

TEST_F(ShredPlaysTest, HybridChildOrderCountsSameTagSiblings) {
  Shred(Mapping::kHybrid);
  int order = Col("line", "line_childOrder");
  int value = Col("line", "line_value");
  std::map<std::string, int64_t> orders;
  for (const Tuple& row : batch_["line"]) {
    orders[row[value].AsString()] = row[order].AsInt();
  }
  EXPECT_EQ(orders["first line"], 1);
  EXPECT_EQ(orders["second line"], 2);
  EXPECT_EQ(orders["act line"], 1);
}

TEST_F(ShredPlaysTest, HybridInlinedLeaves) {
  Shred(Mapping::kHybrid);
  int act_title = Col("act", "act_title");
  int act_prologue = Col("act", "act_prologue");
  const Tuple& act = batch_["act"][0];
  EXPECT_EQ(act[act_title].AsString(), "Act One");
  EXPECT_EQ(act[act_prologue].AsString(), "pro");
  int induct_title = Col("induct", "induct_title");
  EXPECT_EQ(batch_["induct"][0][induct_title].AsString(), "Induction");
}

TEST_F(ShredPlaysTest, XoratorRowCounts) {
  Shred(Mapping::kXorator);
  EXPECT_EQ(batch_["play"].size(), 1u);
  EXPECT_EQ(batch_["induct"].size(), 1u);
  EXPECT_EQ(batch_["act"].size(), 1u);
  EXPECT_EQ(batch_["scene"].size(), 2u);
  EXPECT_EQ(batch_["speech"].size(), 3u);
  EXPECT_EQ(batch_.count("speaker"), 0u);
  EXPECT_EQ(batch_.count("line"), 0u);
}

TEST_F(ShredPlaysTest, XoratorXadtFragments) {
  Shred(Mapping::kXorator);
  int speaker = Col("speech", "speech_speaker");
  int line = Col("speech", "speech_line");
  int id = Col("speech", "speechID");
  const Tuple* speech2 = FindRow(batch_["speech"], id, 2);
  ASSERT_NE(speech2, nullptr);
  ASSERT_EQ((*speech2)[speaker].type(), TypeId::kXadt);
  auto speakers = xadt::ToXmlString((*speech2)[speaker].AsString());
  ASSERT_TRUE(speakers.ok());
  EXPECT_EQ(*speakers, "<SPEAKER>s1</SPEAKER><SPEAKER>s2</SPEAKER>");
  auto lines = xadt::ToXmlString((*speech2)[line].AsString());
  ASSERT_TRUE(lines.ok());
  EXPECT_EQ(*lines, "<LINE>first line</LINE><LINE>second line</LINE>");

  int subtitle = Col("act", "act_subtitle");
  auto subs = xadt::ToXmlString(batch_["act"][0][subtitle].AsString());
  ASSERT_TRUE(subs.ok());
  EXPECT_EQ(*subs, "<SUBTITLE>alpha</SUBTITLE><SUBTITLE>beta</SUBTITLE>");
}

TEST_F(ShredPlaysTest, XoratorMissingOptionalIsNull) {
  Shred(Mapping::kXorator);
  // The induct has no SUBHEAD XADT column; its scene's subhead is null for
  // scene 1 and populated for scene 2.
  int subhead = Col("scene", "scene_subhead");
  int id = Col("scene", "sceneID");
  const Tuple* s1 = FindRow(batch_["scene"], id, 1);
  const Tuple* s2 = FindRow(batch_["scene"], id, 2);
  EXPECT_TRUE((*s1)[subhead].is_null());
  ASSERT_FALSE((*s2)[subhead].is_null());
  EXPECT_EQ(*xadt::TextContent((*s2)[subhead].AsString()), "head");
}

TEST_F(ShredPlaysTest, CompressedShreddingRoundTrips) {
  Shred(Mapping::kXorator, /*compress=*/true);
  int line = Col("speech", "speech_line");
  int id = Col("speech", "speechID");
  const Tuple* speech2 = FindRow(batch_["speech"], id, 2);
  ASSERT_NE(speech2, nullptr);
  EXPECT_TRUE(xadt::IsCompressed((*speech2)[line].AsString()));
  EXPECT_EQ(*xadt::ToXmlString((*speech2)[line].AsString()),
            "<LINE>first line</LINE><LINE>second line</LINE>");
}

TEST_F(ShredPlaysTest, IdsPersistAcrossDocuments) {
  auto schema = MapDtd(datagen::kPlaysDtd, Mapping::kXorator);
  ASSERT_TRUE(schema.ok());
  auto doc = xml::ParseDocument(kPlayDoc);
  ASSERT_TRUE(doc.ok());
  Shredder shredder(&*schema, false);
  RowBatch batch;
  ASSERT_TRUE(shredder.Shred(*doc->root, &batch).ok());
  ASSERT_TRUE(shredder.Shred(*doc->root, &batch).ok());
  EXPECT_EQ(batch["play"].size(), 2u);
  const mapping::TableSpec* play = schema->FindTable("play");
  int id = play->ColumnIndex("playID");
  EXPECT_EQ(batch["play"][0][id].AsInt(), 1);
  EXPECT_EQ(batch["play"][1][id].AsInt(), 2);
  EXPECT_EQ(shredder.NextId("play"), 3);
}

TEST_F(ShredPlaysTest, UnmappedRootRejected) {
  Shred(Mapping::kXorator);
  auto doc = xml::ParseDocument("<NOTPLAY/>");
  ASSERT_TRUE(doc.ok());
  Shredder shredder(&schema_, false);
  RowBatch batch;
  EXPECT_FALSE(shredder.Shred(*doc->root, &batch).ok());
}

TEST(SigmodShredTest, DeepInlinedPathsAndAttributes) {
  auto schema = MapDtd(datagen::kSigmodDtd, Mapping::kHybrid);
  ASSERT_TRUE(schema.ok());
  const char* kDoc =
      "<PP><volume>11</volume><number>2</number><month>6</month>"
      "<year>1999</year><conference>SIGMOD</conference>"
      "<date>1/6/1999</date><confyear>1999</confyear>"
      "<location>Philadelphia</location><sList>"
      "<sListTuple><sectionName SectionPosition='1'>Joins</sectionName>"
      "<articles><aTuple><title articleCode='a1'>Join Order</title>"
      "<authors><author AuthorPosition='1'>Alice</author>"
      "<author AuthorPosition='2'>Bob</author></authors>"
      "<initPage>1</initPage><endPage>12</endPage>"
      "<Toindex><index href='x.xml'>terms</index></Toindex>"
      "<fullText><size href='y.pdf'>120KB</size></fullText>"
      "</aTuple></articles></sListTuple></sList></PP>";
  auto doc = xml::ParseDocument(kDoc);
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  Shredder shredder(&*schema, false);
  RowBatch batch;
  ASSERT_TRUE(shredder.Shred(*doc->root, &batch).ok());
  const mapping::TableSpec* atuple = schema->FindTable("atuple");
  const Tuple& at = batch["atuple"][0];
  EXPECT_EQ(at[atuple->ColumnIndex("atuple_title")].AsString(), "Join Order");
  EXPECT_EQ(at[atuple->ColumnIndex("atuple_title_articlecode")].AsString(),
            "a1");
  EXPECT_EQ(at[atuple->ColumnIndex("atuple_toindex_index")].AsString(),
            "terms");
  EXPECT_EQ(at[atuple->ColumnIndex("atuple_toindex_index_href")].AsString(),
            "x.xml");
  EXPECT_EQ(at[atuple->ColumnIndex("atuple_fulltext_size_href")].AsString(),
            "y.pdf");
  const mapping::TableSpec* author = schema->FindTable("author");
  ASSERT_EQ(batch["author"].size(), 2u);
  EXPECT_EQ(
      batch["author"][1][author->ColumnIndex("author_authorposition")]
          .AsString(),
      "2");
  EXPECT_EQ(batch["author"][1][author->ColumnIndex("author_childOrder")]
                .AsInt(),
            2);
}

TEST(LoaderTest, LoadsAndDecidesCompression) {
  auto schema = MapDtd(datagen::kPlaysDtd, Mapping::kXorator);
  ASSERT_TRUE(schema.ok());
  auto db = ordb::Database::Open({});
  ASSERT_TRUE(db.ok());
  Loader loader(db->get(), &*schema);
  ASSERT_TRUE(loader.CreateTables().ok());
  auto doc = xml::ParseDocument(kPlayDoc);
  ASSERT_TRUE(doc.ok());
  std::vector<const xml::Node*> docs(8, doc->root.get());
  auto report = loader.Load(docs);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->documents, 8u);
  EXPECT_GT(report->tuples, 40u);
  auto r = (*db)->Query("SELECT COUNT(*) AS n FROM speech");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->rows[0][0].AsInt(), 24);
}

TEST(LoaderTest, ForcedCompressionModes) {
  auto schema = MapDtd(datagen::kPlaysDtd, Mapping::kXorator);
  ASSERT_TRUE(schema.ok());
  auto doc = xml::ParseDocument(kPlayDoc);
  ASSERT_TRUE(doc.ok());
  for (bool compressed : {false, true}) {
    auto db = ordb::Database::Open({});
    ASSERT_TRUE(db.ok());
    Loader loader(db->get(), &*schema);
    ASSERT_TRUE(loader.CreateTables().ok());
    LoadOptions opts;
    opts.force_compression = compressed;
    opts.force_raw = !compressed;
    auto report = loader.Load({doc->root.get()}, opts);
    ASSERT_TRUE(report.ok());
    EXPECT_EQ(report->used_compression, compressed);
  }
}

}  // namespace
}  // namespace xorator::shred
