#include <gtest/gtest.h>

#include "ordb/sql.h"

namespace xorator::ordb::sql {
namespace {

Result<SelectStmt> ParseSelect(const std::string& text) {
  XO_ASSIGN_OR_RETURN(Statement stmt, ParseSql(text));
  if (stmt.kind != Statement::Kind::kSelect) {
    return Status::InvalidArgument("not a select");
  }
  return std::move(stmt.select);
}

TEST(SqlParserTest, BasicSelect) {
  auto stmt = ParseSelect("SELECT a, b FROM t WHERE a = 1");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  EXPECT_FALSE(stmt->distinct);
  ASSERT_EQ(stmt->items.size(), 2u);
  EXPECT_EQ(stmt->items[0].expr->ToString(), "a");
  ASSERT_EQ(stmt->from.size(), 1u);
  EXPECT_EQ(stmt->from[0].table, "t");
  EXPECT_EQ(stmt->from[0].alias, "t");
  ASSERT_NE(stmt->where, nullptr);
  EXPECT_EQ(stmt->where->ToString(), "a = 1");
}

TEST(SqlParserTest, CaseInsensitiveKeywords) {
  auto stmt = ParseSelect("select X from T where X like '%y%'");
  ASSERT_TRUE(stmt.ok());
  EXPECT_EQ(stmt->where->kind, AstExpr::Kind::kLike);
}

TEST(SqlParserTest, AliasesAndQualifiedColumns) {
  auto stmt = ParseSelect(
      "SELECT s.a AS x, t.b y FROM tbl s, tbl2 AS t WHERE s.id = t.id");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  EXPECT_EQ(stmt->items[0].alias, "x");
  EXPECT_EQ(stmt->items[1].alias, "y");
  EXPECT_EQ(stmt->from[0].alias, "s");
  EXPECT_EQ(stmt->from[1].alias, "t");
  EXPECT_EQ(stmt->where->children[0]->name, "s.id");
}

TEST(SqlParserTest, StringLiteralsWithEscapes) {
  auto stmt = ParseSelect("SELECT a FROM t WHERE b = 'it''s'");
  ASSERT_TRUE(stmt.ok());
  EXPECT_EQ(stmt->where->children[1]->literal.AsString(), "it's");
}

TEST(SqlParserTest, AndOrPrecedence) {
  auto stmt = ParseSelect("SELECT a FROM t WHERE x = 1 OR y = 2 AND z = 3");
  ASSERT_TRUE(stmt.ok());
  // AND binds tighter: x=1 OR (y=2 AND z=3).
  EXPECT_EQ(stmt->where->kind, AstExpr::Kind::kOr);
  EXPECT_EQ(stmt->where->children[1]->kind, AstExpr::Kind::kAnd);
}

TEST(SqlParserTest, NotAndParens) {
  auto stmt =
      ParseSelect("SELECT a FROM t WHERE NOT (x = 1 OR y = 2) AND z = 3");
  ASSERT_TRUE(stmt.ok());
  EXPECT_EQ(stmt->where->kind, AstExpr::Kind::kAnd);
  EXPECT_EQ(stmt->where->children[0]->kind, AstExpr::Kind::kNot);
}

TEST(SqlParserTest, ComparisonOperators) {
  for (const char* op : {"=", "<>", "!=", "<", "<=", ">", ">="}) {
    auto stmt = ParseSelect(std::string("SELECT a FROM t WHERE a ") + op +
                            " 5");
    ASSERT_TRUE(stmt.ok()) << op;
    EXPECT_EQ(stmt->where->kind, AstExpr::Kind::kCompare) << op;
  }
}

TEST(SqlParserTest, NegativeNumbers) {
  auto stmt = ParseSelect("SELECT a FROM t WHERE a = -5");
  ASSERT_TRUE(stmt.ok());
  EXPECT_EQ(stmt->where->children[1]->literal.AsInt(), -5);
}

TEST(SqlParserTest, FunctionCalls) {
  auto stmt = ParseSelect(
      "SELECT getElm(speech_line, 'LINE', 'LINE', 'friend') FROM speech "
      "WHERE findKeyInElm(speech_speaker, 'SPEAKER', 'HAMLET') = 1");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  EXPECT_EQ(stmt->items[0].expr->kind, AstExpr::Kind::kFunc);
  EXPECT_EQ(stmt->items[0].expr->name, "getElm");
  EXPECT_EQ(stmt->items[0].expr->children.size(), 4u);
  EXPECT_EQ(stmt->where->children[0]->kind, AstExpr::Kind::kFunc);
}

TEST(SqlParserTest, TableFunctionInFrom) {
  auto stmt = ParseSelect(
      "SELECT DISTINCT unnestedS.out FROM speakers, "
      "table(unnest(speaker, 'speaker')) unnestedS");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  EXPECT_TRUE(stmt->distinct);
  ASSERT_EQ(stmt->from.size(), 2u);
  EXPECT_TRUE(stmt->from[1].is_function);
  EXPECT_EQ(stmt->from[1].function_name, "unnest");
  EXPECT_EQ(stmt->from[1].alias, "unnestedS");
  ASSERT_EQ(stmt->from[1].function_args.size(), 2u);
}

TEST(SqlParserTest, TableFunctionRequiresAlias) {
  EXPECT_FALSE(
      ParseSelect("SELECT x FROM table(unnest(a, 'b'))").ok());
}

TEST(SqlParserTest, GroupByOrderByLimit) {
  auto stmt = ParseSelect(
      "SELECT author, COUNT(*) AS n FROM t GROUP BY author "
      "ORDER BY n DESC, author LIMIT 10");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  ASSERT_EQ(stmt->group_by.size(), 1u);
  ASSERT_EQ(stmt->order_by.size(), 2u);
  EXPECT_FALSE(stmt->order_by[0].ascending);
  EXPECT_TRUE(stmt->order_by[1].ascending);
  EXPECT_EQ(stmt->limit, 10);
}

TEST(SqlParserTest, CountStar) {
  auto stmt = ParseSelect("SELECT COUNT(*) FROM t");
  ASSERT_TRUE(stmt.ok());
  EXPECT_EQ(stmt->items[0].expr->kind, AstExpr::Kind::kFunc);
  EXPECT_EQ(stmt->items[0].expr->children[0]->kind, AstExpr::Kind::kStar);
}

TEST(SqlParserTest, SelectStar) {
  auto stmt = ParseSelect("SELECT * FROM t");
  ASSERT_TRUE(stmt.ok());
  EXPECT_EQ(stmt->items[0].expr->kind, AstExpr::Kind::kStar);
}

TEST(SqlParserTest, Comments) {
  auto stmt = ParseSelect("SELECT a -- trailing comment\nFROM t");
  ASSERT_TRUE(stmt.ok());
}

TEST(SqlParserTest, CreateTable) {
  auto stmt = ParseSql(
      "CREATE TABLE speech (speechID INTEGER PRIMARY KEY, "
      "speech_line XADT, note VARCHAR(80))");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  ASSERT_EQ(stmt->kind, Statement::Kind::kCreateTable);
  ASSERT_EQ(stmt->create_table.columns.size(), 3u);
  EXPECT_EQ(stmt->create_table.columns[0].second, TypeId::kInteger);
  EXPECT_EQ(stmt->create_table.columns[1].second, TypeId::kXadt);
  EXPECT_EQ(stmt->create_table.columns[2].second, TypeId::kVarchar);
}

TEST(SqlParserTest, CreateIndex) {
  auto stmt = ParseSql("CREATE INDEX idx ON speech (speech_parentID)");
  ASSERT_TRUE(stmt.ok());
  EXPECT_EQ(stmt->kind, Statement::Kind::kCreateIndex);
  EXPECT_EQ(stmt->create_index.table, "speech");
  EXPECT_EQ(stmt->create_index.column, "speech_parentID");
}

TEST(SqlParserTest, InsertValues) {
  auto stmt = ParseSql("INSERT INTO t VALUES (1, 'x', NULL), (2, 'y', 'z')");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  ASSERT_EQ(stmt->kind, Statement::Kind::kInsert);
  ASSERT_EQ(stmt->insert.rows.size(), 2u);
  EXPECT_TRUE(stmt->insert.rows[0][2].is_null());
  EXPECT_EQ(stmt->insert.rows[1][1].AsString(), "y");
}

TEST(SqlParserTest, Explain) {
  auto stmt = ParseSql("EXPLAIN SELECT a FROM t");
  ASSERT_TRUE(stmt.ok());
  EXPECT_EQ(stmt->kind, Statement::Kind::kExplain);
}

TEST(SqlParserTest, Errors) {
  EXPECT_FALSE(ParseSql("SELECT").ok());
  EXPECT_FALSE(ParseSql("SELECT a").ok());               // missing FROM
  EXPECT_FALSE(ParseSql("SELECT a FROM").ok());          // missing table
  EXPECT_FALSE(ParseSql("SELECT a FROM t WHERE").ok());  // missing predicate
  EXPECT_FALSE(ParseSql("SELECT a FROM t x y").ok());    // trailing tokens
  EXPECT_FALSE(ParseSql("SELECT a FROM t WHERE b = 'unclosed").ok());
  EXPECT_FALSE(ParseSql("DROP TABLE t").ok());
  EXPECT_FALSE(ParseSql("SELECT a FROM t WHERE b LIKE c").ok());
}

TEST(SqlParserTest, StatementTerminator) {
  EXPECT_TRUE(ParseSql("SELECT a FROM t;").ok());
}

}  // namespace
}  // namespace xorator::ordb::sql
