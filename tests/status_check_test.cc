// Tests for the error-handling contract (DESIGN.md section 6): the
// RETURN_IF_ERROR / ASSIGN_OR_RETURN macros, Status::Update, and — in builds
// with XORATOR_STATUS_CHECK — the unchecked-Status tracker, which must abort
// when a non-OK Status (or failed Result) is destroyed without ever being
// inspected.

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <utility>

#include "common/result.h"
#include "common/status.h"
#include "ordb/database.h"

namespace xorator {
namespace {

Status FailIf(bool fail, const std::string& what) {
  if (fail) return Status::ParseError(what);
  return Status::OK();
}

Status Propagate(bool fail, bool* reached_end) {
  RETURN_IF_ERROR(FailIf(fail, "inner detail"));
  *reached_end = true;
  return Status::OK();
}

Result<int> HalfOf(int n) {
  if (n % 2 != 0) return Status::InvalidArgument("odd: " + std::to_string(n));
  return n / 2;
}

Result<int> QuarterOf(int n) {
  int half = 0;
  ASSIGN_OR_RETURN(half, HalfOf(n));
  ASSIGN_OR_RETURN(int quarter, HalfOf(half));
  return quarter;
}

TEST(StatusMacroTest, ReturnIfErrorPropagatesCodeAndMessage) {
  bool reached = false;
  Status s = Propagate(/*fail=*/true, &reached);
  EXPECT_FALSE(reached);
  EXPECT_EQ(s.code(), StatusCode::kParseError);
  EXPECT_EQ(s.message(), "inner detail");
}

TEST(StatusMacroTest, ReturnIfErrorPassesThroughOnOk) {
  bool reached = false;
  EXPECT_TRUE(Propagate(/*fail=*/false, &reached).ok());
  EXPECT_TRUE(reached);
}

TEST(StatusMacroTest, ReturnIfErrorAcceptsAnLvalue) {
  // The macro binds by reference, so checking the lvalue through it must
  // satisfy the tracker for that very object (no copy is destroyed
  // unchecked, and neither is the original).
  auto check = [](Status pending) {
    RETURN_IF_ERROR(pending);
    return Status::OK();
  };
  Status out = check(Status::Unavailable("retry me"));
  EXPECT_EQ(out.code(), StatusCode::kUnavailable);
}

TEST(StatusMacroTest, AssignOrReturnUnwrapsAndPropagates) {
  Result<int> ok = QuarterOf(8);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 2);

  // 6 halves fine once, then 3 is odd: the second ASSIGN_OR_RETURN fires.
  Result<int> inner = QuarterOf(6);
  ASSERT_FALSE(inner.ok());
  EXPECT_EQ(inner.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(inner.status().message(), "odd: 3");

  // 5 is odd immediately: the first ASSIGN_OR_RETURN fires.
  Result<int> outer = QuarterOf(5);
  ASSERT_FALSE(outer.ok());
  EXPECT_EQ(outer.status().message(), "odd: 5");
}

TEST(StatusUpdateTest, FirstErrorWins) {
  Status s;
  s.Update(Status::OK());
  EXPECT_TRUE(s.ok());
  s.Update(Status::IOError("first"));
  s.Update(Status::Corruption("second"));  // swallowed (and marked checked)
  EXPECT_EQ(s.code(), StatusCode::kIOError);
  EXPECT_EQ(s.message(), "first");
}

TEST(StatusMoveTest, MovedFromStatusIsOkAndCarriesNoRetryHint) {
  // The move contract holds in every build type (tracker on or off): the
  // source is left OK with no retry-after hint, so a retry loop that
  // reuses a moved-from status never sees IsRetryable() == true on it.
  Status a = Status::Unavailable("flaky").WithRetryAfter(25);
  EXPECT_TRUE(a.IsRetryable());
  Status b = std::move(a);
  EXPECT_TRUE(a.ok());  // NOLINT(bugprone-use-after-move): the contract
  EXPECT_FALSE(a.IsRetryable());
  EXPECT_EQ(a.retry_after_millis(), 0u);
  EXPECT_TRUE(b.IsRetryable());
  EXPECT_EQ(b.retry_after_millis(), 25u);

  Status c = Status::OK();
  c = std::move(b);
  EXPECT_TRUE(b.ok());  // NOLINT(bugprone-use-after-move): the contract
  EXPECT_FALSE(b.IsRetryable());
  EXPECT_EQ(b.retry_after_millis(), 0u);
  EXPECT_EQ(c.code(), StatusCode::kUnavailable);
  EXPECT_EQ(c.retry_after_millis(), 25u);
}

TEST(StatusTrackerTest, CheckedAndIgnoredStatusesNeverAbort) {
  // These must be safe in every build type.
  { Status s = Status::IOError("inspected"); EXPECT_FALSE(s.ok()); }
  { Status s = Status::IOError("ignored"); s.IgnoreError(); }
  XO_DISCARD_STATUS(Status::IOError("discarded"),
                    "this test asserts the annotated discard is tracker-safe");
  {
    Result<int> r = HalfOf(3);
    EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  }
  {
    // Moving transfers the obligation: the source must destroy silently.
    Status src = Status::Internal("moved");
    Status dst = std::move(src);
    EXPECT_EQ(dst.code(), StatusCode::kInternal);
  }
  SUCCEED();
}

#if XORATOR_STATUS_CHECK

using StatusTrackerDeathTest = ::testing::Test;

TEST(StatusTrackerDeathTest, DroppedNonOkStatusAborts) {
  EXPECT_DEATH(
      { Status s = Status::IOError("boom"); },
      "dropped without being checked.*IOError: boom");
}

TEST(StatusTrackerDeathTest, AbortNamesTheCreationSite) {
  EXPECT_DEATH(
      { Status s = Status::Corruption("torn page"); },
      "status_check_test\\.cc");
}

TEST(StatusTrackerDeathTest, DroppedFailedResultAborts) {
  EXPECT_DEATH(
      { Result<int> r = Status::NotFound("gone"); },
      "dropped without being checked.*NotFound: gone");
}

TEST(StatusTrackerDeathTest, OverwritingAnUncheckedStatusAborts) {
  EXPECT_DEATH(
      {
        Status s = Status::Internal("never looked at");
        s = Status::OK();  // assignment enforces the old obligation
        s.IgnoreError();
      },
      "dropped without being checked.*Internal: never looked at");
}

TEST(StatusTrackerDeathTest, EachCopyCarriesItsOwnObligation) {
  EXPECT_DEATH(
      {
        Status original = Status::Internal("copied");
        {
          Status copy = original;
          copy.IgnoreError();  // satisfies the copy only
        }
        // `original` goes out of scope unchecked here.
      },
      "dropped without being checked.*Internal: copied");
}

#else

TEST(StatusTrackerDeathTest, SkippedWithoutTracker) {
  GTEST_SKIP() << "XORATOR_STATUS_CHECK is compiled out in this build "
                  "(NDEBUG); the tracker death tests run under the Debug/"
                  "Sanitize/ThreadSanitize configurations.";
}

#endif  // XORATOR_STATUS_CHECK

// ------------------------------------------------------------------------
// Satellite: a failed implicit destructor checkpoint must stay observable
// through Database::last_close_status() instead of being swallowed.

TEST(LastCloseStatusTest, FailedDestructorCheckpointIsRecorded) {
  std::string path = ::testing::TempDir() + "/xorator_last_close.db";
  bool saw_failure = false;
  bool saw_success = false;
  // Sweep the injected disk lifetime: small budgets kill Open itself,
  // large ones let everything succeed; in between, Open and the insert
  // succeed but the destructor's implicit checkpoint runs out of writes.
  for (int64_t budget = 1; budget <= 128 && !(saw_failure && saw_success);
       ++budget) {
    std::remove(path.c_str());
    std::remove((path + ".wal").c_str());
    ordb::DbOptions options;
    options.path = path;
    ordb::FaultOptions fault;
    fault.fail_after_writes = budget;
    options.fault = fault;
    auto db = ordb::Database::Open(options);
    if (!db.ok()) continue;  // the disk died during Open's own checkpoint
    if (!(*db)->Execute("CREATE TABLE t (a INTEGER)").ok()) continue;
    if (!(*db)->Execute("INSERT INTO t VALUES (7)").ok()) continue;
    (*db).reset();  // destructor checkpoints implicitly
    Status close = ordb::Database::last_close_status();
    if (close.ok()) {
      saw_success = true;
    } else {
      EXPECT_EQ(close.code(), StatusCode::kIOError) << close.ToString();
      saw_failure = true;
    }
  }
  EXPECT_TRUE(saw_failure)
      << "no budget made the destructor checkpoint fail";
  EXPECT_TRUE(saw_success)
      << "no budget let the destructor checkpoint succeed";
  std::remove(path.c_str());
  std::remove((path + ".wal").c_str());
}

}  // namespace
}  // namespace xorator
