#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <optional>
#include <random>

#include "ordb/buffer_pool.h"
#include "ordb/heap_file.h"
#include "ordb/page.h"
#include "ordb/pager.h"

namespace xorator::ordb {
namespace {

TEST(SlottedPageTest, InsertAndGet) {
  char buf[kPageSize];
  SlottedPage page(buf);
  page.Init();
  auto s1 = page.Insert("hello");
  auto s2 = page.Insert("world!");
  ASSERT_TRUE(s1.ok());
  ASSERT_TRUE(s2.ok());
  EXPECT_EQ(*page.Get(*s1), "hello");
  EXPECT_EQ(*page.Get(*s2), "world!");
  EXPECT_EQ(page.slot_count(), 2);
}

TEST(SlottedPageTest, DeleteTombstones) {
  char buf[kPageSize];
  SlottedPage page(buf);
  page.Init();
  auto slot = page.Insert("x");
  ASSERT_TRUE(slot.ok());
  ASSERT_TRUE(page.Delete(*slot).ok());
  EXPECT_FALSE(page.Get(*slot).ok());
  EXPECT_FALSE(page.Delete(*slot).ok());
  EXPECT_FALSE(page.Get(99).ok());
}

TEST(SlottedPageTest, FillsUntilFull) {
  char buf[kPageSize];
  SlottedPage page(buf);
  page.Init();
  std::string record(100, 'r');
  int inserted = 0;
  while (page.Fits(record.size())) {
    ASSERT_TRUE(page.Insert(record).ok());
    ++inserted;
  }
  // 100-byte records + 4-byte slots into ~8KB.
  EXPECT_GT(inserted, 70);
  EXPECT_FALSE(page.Insert(record).ok());
  // All records still readable.
  for (int i = 0; i < inserted; ++i) {
    EXPECT_EQ(*page.Get(static_cast<uint16_t>(i)), record);
  }
}

TEST(SlottedPageTest, NextPageLink) {
  char buf[kPageSize];
  SlottedPage page(buf);
  page.Init();
  EXPECT_EQ(page.next_page(), kInvalidPageId);
  page.set_next_page(42);
  EXPECT_EQ(page.next_page(), 42u);
}

class PagerTest : public ::testing::TestWithParam<bool> {
 protected:
  void SetUp() override {
    if (GetParam()) {
      path_ = ::testing::TempDir() + "/xorator_pager_test.db";
      std::remove(path_.c_str());
      auto pager = FilePager::Open(path_);
      ASSERT_TRUE(pager.ok()) << pager.status().ToString();
      pager_ = std::move(*pager);
    } else {
      pager_ = std::make_unique<MemoryPager>();
    }
  }
  void TearDown() override {
    pager_.reset();
    if (!path_.empty()) std::remove(path_.c_str());
  }

  std::string path_;
  std::unique_ptr<Pager> pager_;
};

TEST_P(PagerTest, AllocateReadWrite) {
  auto p0 = pager_->Allocate();
  auto p1 = pager_->Allocate();
  ASSERT_TRUE(p0.ok());
  ASSERT_TRUE(p1.ok());
  EXPECT_EQ(*p0, 0u);
  EXPECT_EQ(*p1, 1u);
  EXPECT_EQ(pager_->page_count(), 2u);

  char buf[kPageSize];
  std::memset(buf, 'a', kPageSize);
  ASSERT_TRUE(pager_->Write(*p1, buf).ok());
  char read_buf[kPageSize];
  ASSERT_TRUE(pager_->Read(*p1, read_buf).ok());
  EXPECT_EQ(std::memcmp(buf, read_buf, kPageSize), 0);
  // Fresh pages come back zeroed.
  ASSERT_TRUE(pager_->Read(*p0, read_buf).ok());
  EXPECT_EQ(read_buf[0], 0);
  EXPECT_EQ(read_buf[kPageSize - 1], 0);
}

TEST_P(PagerTest, BadPageIdRejected) {
  char buf[kPageSize];
  EXPECT_FALSE(pager_->Read(5, buf).ok());
  EXPECT_FALSE(pager_->Write(5, buf).ok());
}

INSTANTIATE_TEST_SUITE_P(MemoryAndFile, PagerTest,
                         ::testing::Values(false, true));

TEST(FilePagerTest, PersistsAcrossReopen) {
  std::string path = ::testing::TempDir() + "/xorator_persist.db";
  std::remove(path.c_str());
  {
    auto pager = FilePager::Open(path);
    ASSERT_TRUE(pager.ok());
    auto id = (*pager)->Allocate();
    ASSERT_TRUE(id.ok());
    char buf[kPageSize];
    std::memset(buf, 'z', kPageSize);
    ASSERT_TRUE((*pager)->Write(*id, buf).ok());
  }
  auto reopened = FilePager::Open(path);
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ((*reopened)->page_count(), 1u);
  char buf[kPageSize];
  ASSERT_TRUE((*reopened)->Read(0, buf).ok());
  EXPECT_EQ(buf[100], 'z');
  std::remove(path.c_str());
}

TEST(BufferPoolTest, HitsAndEvictions) {
  MemoryPager pager;
  BufferPool pool(&pager, 2);
  auto p0 = pool.Create();
  ASSERT_TRUE(p0.ok());
  const PageId id0 = p0->id();
  // Poke a payload byte; the first kPageHeaderBytes belong to the checksum
  // header and are overwritten on write-back. Create() guards start dirty.
  p0->data()[100] = 'x';
  ASSERT_TRUE(p0->Release().ok());
  auto p1 = pool.Create();
  ASSERT_TRUE(p1.ok());
  ASSERT_TRUE(p1->Release().ok());
  auto p2 = pool.Create();  // evicts p0 (LRU), which is dirty
  ASSERT_TRUE(p2.ok());
  ASSERT_TRUE(p2->Release().ok());
  EXPECT_GE(pool.stats().evictions, 1u);
  EXPECT_GE(pool.stats().writebacks, 1u);
  // Fetching p0 again reads the written-back content.
  auto fetched = pool.Fetch(id0);
  ASSERT_TRUE(fetched.ok());
  EXPECT_EQ(fetched->data()[100], 'x');
  ASSERT_TRUE(fetched->Release().ok());
  EXPECT_GE(pool.stats().misses, 1u);
}

TEST(PageChecksumTest, StampVerifyAndDetectFlip) {
  char buf[kPageSize];
  std::memset(buf, 0, kPageSize);
  // A fresh all-zero page verifies (FilePager::Allocate produces these).
  EXPECT_TRUE(VerifyPageChecksum(buf));
  buf[100] = 'a';
  EXPECT_FALSE(VerifyPageChecksum(buf));  // payload set, checksum not stamped
  SetPageChecksum(buf);
  EXPECT_TRUE(VerifyPageChecksum(buf));
  buf[2000] ^= 0x08;  // single bit flip
  EXPECT_FALSE(VerifyPageChecksum(buf));
  buf[2000] ^= 0x08;
  EXPECT_TRUE(VerifyPageChecksum(buf));
}

TEST(BufferPoolTest, ChecksumFailureOnFetchIsCorruption) {
  MemoryPager pager;
  BufferPool pool(&pager, 2);
  auto p0 = pool.Create();
  ASSERT_TRUE(p0.ok());
  const PageId id0 = p0->id();
  p0->data()[500] = 'v';
  ASSERT_TRUE(p0->Release().ok());
  ASSERT_TRUE(pool.FlushAll().ok());
  // Corrupt the stored page behind the pool's back, then force a re-read.
  char raw[kPageSize];
  ASSERT_TRUE(pager.Read(id0, raw).ok());
  raw[500] ^= 0x01;
  ASSERT_TRUE(pager.Write(id0, raw).ok());
  auto p1 = pool.Create();
  ASSERT_TRUE(p1.ok());
  ASSERT_TRUE(p1->Release().ok());
  auto p2 = pool.Create();  // evicts p0's frame
  ASSERT_TRUE(p2.ok());
  ASSERT_TRUE(p2->Release().ok());
  auto fetched = pool.Fetch(id0);
  ASSERT_FALSE(fetched.ok());
  EXPECT_EQ(fetched.status().code(), StatusCode::kCorruption);
  EXPECT_GE(pool.stats().checksum_failures, 1u);
}

TEST(FilePagerTest, RejectsNonPageMultipleFile) {
  std::string path = ::testing::TempDir() + "/xorator_torn.db";
  std::remove(path.c_str());
  {
    std::ofstream f(path, std::ios::binary);
    std::string partial(kPageSize + 100, 'x');  // one page plus a torn tail
    f.write(partial.data(), static_cast<std::streamsize>(partial.size()));
  }
  auto pager = FilePager::Open(path);
  ASSERT_FALSE(pager.ok());
  EXPECT_EQ(pager.status().code(), StatusCode::kIOError);
  EXPECT_NE(pager.status().message().find("multiple"), std::string::npos);
  std::remove(path.c_str());
}

TEST(FilePagerTest, ShortReadNamesThePage) {
  std::string path = ::testing::TempDir() + "/xorator_short.db";
  std::remove(path.c_str());
  auto pager = FilePager::Open(path);
  ASSERT_TRUE(pager.ok());
  ASSERT_TRUE((*pager)->Allocate().ok());
  ASSERT_TRUE((*pager)->Allocate().ok());
  ASSERT_TRUE((*pager)->Flush().ok());
  // Truncate page 1 away behind the pager's back: reading it now comes up
  // short and must name the page, not crash or return stale bytes.
  std::filesystem::resize_file(path, kPageSize);
  char buf[kPageSize];
  Status s = (*pager)->Read(1, buf);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kIOError);
  EXPECT_NE(s.message().find("page 1"), std::string::npos);
  std::remove(path.c_str());
}

TEST(BufferPoolTest, AllPinnedFails) {
  MemoryPager pager;
  BufferPool pool(&pager, 1);
  auto p0 = pool.Create();
  ASSERT_TRUE(p0.ok());
  // p0's guard still holds its pin; no frame available.
  EXPECT_FALSE(pool.Create().ok());
  ASSERT_TRUE(p0->Release().ok());
  EXPECT_TRUE(pool.Create().ok());
}

TEST(BufferPoolTest, FlushAllWritesDirtyFrames) {
  MemoryPager pager;
  BufferPool pool(&pager, 4);
  auto p = pool.Create();
  ASSERT_TRUE(p.ok());
  const PageId id = p->id();
  p->data()[7] = 'q';
  ASSERT_TRUE(p->Release().ok());
  ASSERT_TRUE(pool.FlushAll().ok());
  char buf[kPageSize];
  ASSERT_TRUE(pager.Read(id, buf).ok());
  EXPECT_EQ(buf[7], 'q');
}

TEST(PageRefTest, MoveTransfersOwnershipWithoutTouchingThePin) {
  MemoryPager pager;
  BufferPool pool(&pager, 4);
  auto created = pool.Create();
  ASSERT_TRUE(created.ok());
  PageRef a = std::move(*created);
  ASSERT_TRUE(a.holds());
  const PageId id = a.id();
  EXPECT_EQ(pool.PinnedFrameCount(), 1u);
  PageRef b = std::move(a);
  // Still exactly one pin, now owned by b alone.
  EXPECT_EQ(pool.PinnedFrameCount(), 1u);
  ASSERT_TRUE(b.holds());
  EXPECT_EQ(b.id(), id);
  ASSERT_TRUE(b.Release().ok());
  EXPECT_EQ(pool.PinnedFrameCount(), 0u);
}

TEST(PageRefTest, MoveAssignmentReleasesTheOverwrittenPin) {
  MemoryPager pager;
  BufferPool pool(&pager, 4);
  auto first = pool.Create();
  ASSERT_TRUE(first.ok());
  auto second = pool.Create();
  ASSERT_TRUE(second.ok());
  PageRef a = std::move(*first);
  PageRef b = std::move(*second);
  const PageId kept = b.id();
  EXPECT_EQ(pool.PinnedFrameCount(), 2u);
  a = std::move(b);
  // a's old pin was dropped by the assignment; b's pin moved into a.
  EXPECT_EQ(pool.PinnedFrameCount(), 1u);
  EXPECT_EQ(a.id(), kept);
  ASSERT_TRUE(a.Release().ok());
  EXPECT_EQ(pool.PinnedFrameCount(), 0u);
}

TEST(PageRefTest, DirtyBitPropagation) {
  MemoryPager pager;
  BufferPool pool(&pager, 4);
  auto created = pool.Create();
  ASSERT_TRUE(created.ok());
  const PageId id = created->id();
  ASSERT_TRUE(created->Release().ok());
  ASSERT_TRUE(pool.FlushAll().ok());

  // Released clean (no MarkDirty): the in-memory poke must not reach the
  // pager on the next flush.
  auto clean = pool.Fetch(id);
  ASSERT_TRUE(clean.ok());
  clean->data()[64] = 'c';
  ASSERT_TRUE(clean->Release().ok());
  ASSERT_TRUE(pool.FlushAll().ok());
  char buf[kPageSize];
  ASSERT_TRUE(pager.Read(id, buf).ok());
  EXPECT_EQ(buf[64], 0);

  // Released after MarkDirty: the write-back happens.
  auto dirty = pool.Fetch(id);
  ASSERT_TRUE(dirty.ok());
  dirty->data()[64] = 'd';
  dirty->MarkDirty();
  ASSERT_TRUE(dirty->Release().ok());
  ASSERT_TRUE(pool.FlushAll().ok());
  ASSERT_TRUE(pager.Read(id, buf).ok());
  EXPECT_EQ(buf[64], 'd');
}

TEST(PageRefTest, ReleaseSurfacesTheUnpinStatusAndInertsTheGuard) {
  MemoryPager pager;
  BufferPool pool(&pager, 4);
  auto created = pool.Create();
  ASSERT_TRUE(created.ok());
  PageRef ref = std::move(*created);
  EXPECT_TRUE(ref.Release().ok());
  // The guard holds nothing now; its destructor must not unpin again (a
  // second Unpin would underflow the frame's pin count).
  EXPECT_FALSE(ref.holds());
  EXPECT_EQ(pool.PinnedFrameCount(), 0u);
}

#ifndef NDEBUG
TEST(BufferPoolDeathTest, LeakedPinTripsTheSentinel) {
  // `leaked` is declared before the pool so the guard outlives it — the
  // lifetime bug the destructor sentinel exists to catch.
  EXPECT_DEATH(
      {
        std::optional<PageRef> leaked;
        MemoryPager pager;
        BufferPool pool(&pager, 4);
        auto created = pool.Create();
        if (created.ok()) leaked.emplace(std::move(*created));
      },
      "PinnedFrameCount");
}
#endif

class HeapFileTest : public ::testing::Test {
 protected:
  HeapFileTest() : pool_(&pager_, 64) {}

  MemoryPager pager_;
  BufferPool pool_;
};

TEST_F(HeapFileTest, InsertGetScan) {
  auto file = HeapFile::Create(&pool_);
  ASSERT_TRUE(file.ok());
  std::vector<Rid> rids;
  for (int i = 0; i < 100; ++i) {
    auto rid = file->Insert("record-" + std::to_string(i));
    ASSERT_TRUE(rid.ok());
    rids.push_back(*rid);
  }
  EXPECT_EQ(file->record_count(), 100u);
  EXPECT_EQ(*file->Get(rids[42]), "record-42");

  auto scanner = file->Scan();
  Rid rid;
  std::string record;
  int count = 0;
  while (true) {
    auto ok = scanner.Next(&rid, &record);
    ASSERT_TRUE(ok.ok());
    if (!*ok) break;
    EXPECT_EQ(record, "record-" + std::to_string(count));
    ++count;
  }
  EXPECT_EQ(count, 100);
}

TEST_F(HeapFileTest, SpansMultiplePages) {
  auto file = HeapFile::Create(&pool_);
  ASSERT_TRUE(file.ok());
  std::string record(1000, 'p');
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(file->Insert(record).ok());
  }
  EXPECT_GT(file->page_count(), 5u);
  int scanned = 0;
  auto scanner = file->Scan();
  Rid rid;
  std::string r;
  while (*scanner.Next(&rid, &r)) {
    EXPECT_EQ(r, record);
    ++scanned;
  }
  EXPECT_EQ(scanned, 50);
}

TEST_F(HeapFileTest, OverflowRecords) {
  auto file = HeapFile::Create(&pool_);
  ASSERT_TRUE(file.ok());
  // A record much larger than one page (a large XADT fragment).
  std::string big(100000, 'x');
  big += "tail-marker";
  auto rid = file->Insert(big);
  ASSERT_TRUE(rid.ok());
  auto back = file->Get(*rid);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, big);
  // Overflow pages are accounted for in page_count.
  EXPECT_GT(file->page_count(), 12u);
  // Scanning also resolves the overflow record.
  auto scanner = file->Scan();
  Rid r;
  std::string rec;
  ASSERT_TRUE(*scanner.Next(&r, &rec));
  EXPECT_EQ(rec, big);
}

TEST_F(HeapFileTest, DeleteSkippedByScan) {
  auto file = HeapFile::Create(&pool_);
  ASSERT_TRUE(file.ok());
  auto r1 = file->Insert("keep");
  auto r2 = file->Insert("drop");
  auto r3 = file->Insert("keep2");
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());
  ASSERT_TRUE(r3.ok());
  ASSERT_TRUE(file->Delete(*r2).ok());
  EXPECT_FALSE(file->Get(*r2).ok());
  EXPECT_EQ(file->record_count(), 2u);
  std::vector<std::string> seen;
  auto scanner = file->Scan();
  Rid rid;
  std::string rec;
  while (*scanner.Next(&rid, &rec)) seen.push_back(rec);
  EXPECT_EQ(seen, (std::vector<std::string>{"keep", "keep2"}));
}

TEST(RidTest, EncodeDecode) {
  Rid rid{12345, 678};
  Rid decoded = Rid::Decode(rid.Encode());
  EXPECT_EQ(decoded, rid);
}

}  // namespace
}  // namespace xorator::ordb
