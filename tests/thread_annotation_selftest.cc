/// Compile-time self-test for the thread-safety annotation layer
/// (src/common/thread_annotations.h, src/common/mutex.h).
///
/// This file is never linked into a test binary; CMake compiles it with
/// `-fsyntax-only` in two configurations (see tests/CMakeLists.txt):
///
///  * Without XO_THREAD_ANNOTATION_SELFTEST it must compile cleanly on
///    every compiler — proving the annotation macros expand to valid
///    (empty, on GCC) attributes and the guard classes are usable.
///
///  * With XO_THREAD_ANNOTATION_SELFTEST defined, the block at the bottom
///    adds a deliberate lock-discipline violation. Under Clang with
///    -Werror=thread-safety-analysis the compilation MUST fail; the ctest
///    entry is registered with WILL_FAIL so a pass here means the analysis
///    actually rejects unguarded access. If this test ever "succeeds",
///    the -Wthread-safety wiring has silently rotted.

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace xorator {
namespace {

/// Minimal guarded structure exercising every macro the engine relies on.
class Counter {
 public:
  void Increment() XO_EXCLUDES(mu_) {
    xo::MutexLock lock(&mu_);
    ++value_;
  }

  [[nodiscard]] int value() const XO_EXCLUDES(mu_) {
    xo::MutexLock lock(&mu_);
    return value_;
  }

  void IncrementLocked() XO_REQUIRES(mu_) { ++value_; }

#ifdef XO_THREAD_ANNOTATION_SELFTEST
  /// Deliberate violation: touches the guarded member with no lock held.
  /// Clang Thread Safety Analysis must reject this function.
  void BrokenIncrement() { ++value_; }
#endif

 private:
  mutable xo::Mutex mu_{xo::LockRank::kLeafHealth};
  int value_ XO_GUARDED_BY(mu_) = 0;
};

/// Same shape for the shared mutex and its two guard flavors.
class Registry {
 public:
  void Set(int v) XO_EXCLUDES(mu_) {
    xo::WriterLock lock(&mu_);
    value_ = v;
  }

  [[nodiscard]] int Get() const XO_EXCLUDES(mu_) {
    xo::ReaderLock lock(&mu_);
    return GetLocked();
  }

#ifdef XO_THREAD_ANNOTATION_SELFTEST
  /// Deliberate violation: a reader lock does not permit writing.
  void BrokenSet(int v) {
    xo::ReaderLock lock(&mu_);
    value_ = v;
  }
#endif

 private:
  [[nodiscard]] int GetLocked() const XO_REQUIRES_SHARED(mu_) {
    return value_;
  }

  mutable xo::SharedMutex mu_{xo::LockRank::kCatalog};
  int value_ XO_GUARDED_BY(mu_) = 0;
};

/// Keeps both classes odr-used so no -Wunused warning fires in the clean
/// configuration.
[[maybe_unused]] int Exercise() {
  Counter c;
  c.Increment();
  Registry r;
  r.Set(1);
  return c.value() + r.Get();
}

}  // namespace
}  // namespace xorator
