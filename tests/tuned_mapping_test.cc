#include <gtest/gtest.h>

#include "benchutil/fixture.h"
#include "datagen/dtds.h"
#include "datagen/generators.h"
#include "dtdgraph/simplify.h"
#include "mapping/mapper.h"
#include "mapping/xml_stats.h"
#include "xml/dtd.h"
#include "xml/parser.h"

namespace xorator::mapping {
namespace {

using benchutil::BuildExperimentDb;
using benchutil::ExperimentOptions;
using benchutil::Mapping;

TEST(XmlStatsTest, CountsInstancesBytesDepth) {
  auto doc = xml::ParseDocument(
      "<a><b><c>text</c></b><b><c>t</c><c>u</c></b></a>");
  ASSERT_TRUE(doc.ok());
  XmlStats stats;
  stats.AddDocument(*doc->root);
  EXPECT_EQ(stats.documents(), 1u);
  const ElementStats* a = stats.Find("a");
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a->instances, 1u);
  EXPECT_EQ(a->max_subtree_depth, 2);
  const ElementStats* b = stats.Find("b");
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(b->instances, 2u);
  EXPECT_EQ(b->max_subtree_depth, 1);
  const ElementStats* c = stats.Find("c");
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->instances, 3u);
  EXPECT_EQ(c->max_subtree_depth, 0);
  // <c>text</c> = 11 bytes; <c>t</c> = 8; <c>u</c> = 8 -> avg = 9.
  EXPECT_NEAR(c->avg_subtree_bytes, 9.0, 0.01);
  EXPECT_EQ(stats.Find("nothere"), nullptr);
}

TEST(XmlStatsTest, AccumulatesAcrossDocuments) {
  auto d1 = xml::ParseDocument("<a><b>x</b></a>");
  auto d2 = xml::ParseDocument("<a><b>y</b><b>z</b></a>");
  XmlStats stats;
  stats.AddDocument(*d1->root);
  stats.AddDocument(*d2->root);
  EXPECT_EQ(stats.documents(), 2u);
  EXPECT_EQ(stats.Find("b")->instances, 3u);
  EXPECT_EQ(stats.Find("a")->instances, 2u);
}

Result<MappedSchema> TunedSigmod(int docs, const TunedOptions& options) {
  datagen::SigmodOptions gen_opts;
  gen_opts.documents = docs;
  auto corpus = datagen::SigmodGenerator(gen_opts).GenerateCorpus();
  std::vector<const xml::Node*> raw;
  for (const auto& d : corpus) raw.push_back(d.get());
  XO_ASSIGN_OR_RETURN(xml::Dtd dtd, xml::ParseDtd(datagen::kSigmodDtd));
  XO_ASSIGN_OR_RETURN(auto simplified, dtdgraph::Simplify(dtd));
  XmlStats stats = CollectXmlStats(raw);
  return MapXoratorTuned(simplified, stats, options);
}

TEST(TunedMappingTest, HugeThresholdsMatchClassicXorator) {
  TunedOptions options;
  options.max_fragment_bytes = 0;  // disabled
  options.max_fragment_depth = 0;  // disabled
  auto tuned = TunedSigmod(10, options);
  ASSERT_TRUE(tuned.ok()) << tuned.status().ToString();
  EXPECT_EQ(tuned->tables.size(), 1u);
  EXPECT_EQ(tuned->algorithm, "xorator_tuned");
}

TEST(TunedMappingTest, SmallByteThresholdKeepsBigSubtreesRelational) {
  TunedOptions options;
  options.max_fragment_bytes = 256;  // sList fragments are kilobytes
  options.max_fragment_depth = 0;
  auto tuned = TunedSigmod(10, options);
  ASSERT_TRUE(tuned.ok()) << tuned.status().ToString();
  // sList (and the chain under it that still exceeds the threshold) become
  // relations; small subtrees like Toindex stay XADT/inlined.
  EXPECT_GT(tuned->tables.size(), 1u);
  EXPECT_TRUE(tuned->IsRelationElement("sList"));
  EXPECT_TRUE(tuned->IsRelationElement("sListTuple"));
  // An aTuple averages a few hundred bytes: with a 256-byte cap it is
  // relational too, but its small children collapse into XADT attributes.
  const TableSpec* atuple = tuned->FindTable("atuple");
  ASSERT_NE(atuple, nullptr);
  EXPECT_GE(atuple->ColumnIndex("atuple_authors"), 0);
}

TEST(TunedMappingTest, DepthThreshold) {
  TunedOptions options;
  options.max_fragment_bytes = 0;
  options.max_fragment_depth = 2;  // sList nests 4 levels
  auto tuned = TunedSigmod(10, options);
  ASSERT_TRUE(tuned.ok()) << tuned.status().ToString();
  EXPECT_TRUE(tuned->IsRelationElement("sList"));
  EXPECT_FALSE(tuned->IsRelationElement("authors"));
}

TEST(TunedMappingTest, EndToEndLoadAndQuery) {
  datagen::SigmodOptions gen_opts;
  gen_opts.documents = 30;
  auto corpus = datagen::SigmodGenerator(gen_opts).GenerateCorpus();
  std::vector<const xml::Node*> docs;
  for (const auto& d : corpus) docs.push_back(d.get());

  ExperimentOptions opts;
  opts.mapping = Mapping::kXoratorTuned;
  opts.tuned.max_fragment_bytes = 256;
  opts.tuned.max_fragment_depth = 0;
  auto tuned = BuildExperimentDb(datagen::kSigmodDtd, docs, opts);
  ASSERT_TRUE(tuned.ok()) << tuned.status().ToString();
  EXPECT_GT(tuned->schema.tables.size(), 1u);

  ExperimentOptions hybrid_opts;
  hybrid_opts.mapping = Mapping::kHybrid;
  auto hybrid = BuildExperimentDb(datagen::kSigmodDtd, docs, hybrid_opts);
  ASSERT_TRUE(hybrid.ok());

  // The tuned database agrees with Hybrid on document and author counts.
  auto count = [](benchutil::ExperimentDb* db, const std::string& sql) {
    auto r = db->db->Query(sql);
    EXPECT_TRUE(r.ok()) << sql << ": " << r.status().ToString();
    return r.ok() ? r->rows[0][0].AsInt() : -1;
  };
  EXPECT_EQ(count(&*tuned, "SELECT COUNT(*) AS n FROM pp"),
            count(&*hybrid, "SELECT COUNT(*) AS n FROM pp"));
  // Author keyword search through whatever XADT columns the tuned mapping
  // kept (authors fragments live under atuple).
  const TableSpec* atuple = tuned->schema.FindTable("atuple");
  ASSERT_NE(atuple, nullptr);
  int authors_col = atuple->ColumnIndex("atuple_authors");
  ASSERT_GE(authors_col, 0);
  auto tuned_match = tuned->db->Query(
      "SELECT COUNT(*) AS n FROM atuple "
      "WHERE findKeyInElm(atuple_authors, 'author', 'Worthy') = 1");
  ASSERT_TRUE(tuned_match.ok()) << tuned_match.status().ToString();
  auto hybrid_match = hybrid->db->Query(
      "SELECT COUNT(*) AS n FROM atuple, authors, author "
      "WHERE authors_parentID = atupleID AND author_parentID = authorsID "
      "AND author_value LIKE '%Worthy%'");
  ASSERT_TRUE(hybrid_match.ok());
  EXPECT_EQ(tuned_match->rows[0][0].AsInt(),
            hybrid_match->rows[0][0].AsInt());
}

TEST(TunedMappingTest, ShakespeareTunedKeepsSmallFragments) {
  datagen::ShakespeareOptions gen_opts;
  gen_opts.plays = 2;
  auto corpus = datagen::ShakespeareGenerator(gen_opts).GenerateCorpus();
  std::vector<const xml::Node*> docs;
  for (const auto& d : corpus) docs.push_back(d.get());
  auto dtd = xml::ParseDtd(datagen::kShakespeareDtd);
  auto simplified = dtdgraph::Simplify(*dtd);
  XmlStats stats = CollectXmlStats(docs);
  // Speech lines are small; FM front matter can exceed a small threshold.
  TunedOptions options;
  options.max_fragment_bytes = 200;
  options.max_fragment_depth = 0;
  auto tuned = MapXoratorTuned(*simplified, stats, options);
  ASSERT_TRUE(tuned.ok()) << tuned.status().ToString();
  EXPECT_TRUE(tuned->IsRelationElement("FM"));
  EXPECT_GE(tuned->tables.size(), 8u);  // classic XORator has 7
}

}  // namespace
}  // namespace xorator::mapping
