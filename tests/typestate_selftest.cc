/// Compile-time self-test for the page-pin typestate layer
/// (src/common/typestate.h, ordb::PageRef in src/ordb/buffer_pool.h).
///
/// This file is never linked into a test binary; CMake compiles it with
/// `-fsyntax-only` in two configurations (see tests/CMakeLists.txt):
///
///  * Without XO_TYPESTATE_SELFTEST it must compile cleanly on every
///    compiler — proving the annotation macros expand to valid attributes
///    (or to nothing, on GCC) and the guard is usable through its intended
///    protocol.
///
///  * With XO_TYPESTATE_SELFTEST defined, the block at the bottom adds
///    deliberate pin-protocol violations. Under Clang with -Werror=consumed
///    the compilation MUST fail; the ctest entry is registered WILL_FAIL so
///    a pass here means the analysis actually rejects use-after-release.
///    If this test ever "succeeds", the -Wconsumed wiring has silently
///    rotted.

#include <utility>

#include "common/typestate.h"
#include "ordb/buffer_pool.h"

namespace xorator {

/// Produces a live guard for the analysis to track. Never defined — this
/// translation unit is only ever syntax-checked — but the annotation tells
/// the analysis the returned guard holds a pin, exactly like
/// BufferPool::Fetch does for its internal PageRef construction.
ordb::PageRef AcquireForTest() XO_RETURN_TYPESTATE(unconsumed);

namespace {

/// The intended protocol: use the page, mark it, release exactly once.
[[maybe_unused]] Status LegalUse() {
  ordb::PageRef ref = AcquireForTest();
  char* bytes = ref.data();
  bytes[0] = 'x';
  ref.MarkDirty();
  return ref.Release();
}

/// Moves transfer the pin; the survivor is the one that releases.
[[maybe_unused]] Status LegalMove() {
  ordb::PageRef a = AcquireForTest();
  ordb::PageRef b = std::move(a);
  if (b.holds()) {
    b.MarkDirty();
  }
  return b.Release();
}

/// Relying on the destructor instead of Release() is also legal.
[[maybe_unused]] void LegalDestructorRelease() {
  ordb::PageRef ref = AcquireForTest();
  ref.MarkDirty();
}

#ifdef XO_TYPESTATE_SELFTEST

/// Deliberate violation: touching the guard after Release(). The page
/// bytes may already belong to another page — Clang must reject this.
[[maybe_unused]] void BrokenUseAfterRelease() {
  ordb::PageRef ref = AcquireForTest();
  XO_DISCARD_STATUS(ref.Release(), "selftest exercises the violation");
  ref.MarkDirty();
}

/// Deliberate violation: releasing the same pin twice would underflow the
/// frame's pin count.
[[maybe_unused]] void BrokenDoubleRelease() {
  ordb::PageRef ref = AcquireForTest();
  XO_DISCARD_STATUS(ref.Release(), "selftest exercises the violation");
  XO_DISCARD_STATUS(ref.Release(), "selftest exercises the violation");
}

/// Deliberate violation: the pin moved into `b`, so `a` no longer guards
/// anything.
[[maybe_unused]] void BrokenUseAfterMove() {
  ordb::PageRef a = AcquireForTest();
  ordb::PageRef b = std::move(a);
  XO_DISCARD_STATUS(b.Release(), "selftest exercises the violation");
  a.MarkDirty();
}

#endif  // XO_TYPESTATE_SELFTEST

}  // namespace
}  // namespace xorator
