#include <gtest/gtest.h>

#include "benchutil/fixture.h"
#include "datagen/dtds.h"
#include "datagen/generators.h"
#include "xadt/scanner.h"
#include "xadt/xadt.h"
#include "xml/dtd.h"
#include "xml/parser.h"

namespace xorator::xadt {
namespace {

std::vector<const xml::Node*> Roots(const xml::Node& frag) {
  std::vector<const xml::Node*> out;
  for (const auto& c : frag.children()) out.push_back(c.get());
  return out;
}

class DirectoryFormatTest : public ::testing::TestWithParam<bool> {
 protected:
  std::string EncodeDir(const std::string& xml_text) {
    auto frag = xml::ParseFragment(xml_text);
    EXPECT_TRUE(frag.ok());
    return EncodeWithDirectory(Roots(**frag), GetParam());
  }
  std::string EncodePlain(const std::string& xml_text) {
    auto frag = xml::ParseFragment(xml_text);
    EXPECT_TRUE(frag.ok());
    return Encode(Roots(**frag), GetParam());
  }
};

TEST_P(DirectoryFormatTest, MarkersAndDetection) {
  std::string bytes = EncodeDir("<a>1</a><b>2</b>");
  EXPECT_TRUE(HasDirectory(bytes));
  EXPECT_EQ(IsCompressed(bytes), GetParam());
  EXPECT_FALSE(HasDirectory(EncodePlain("<a>1</a>")));
}

TEST_P(DirectoryFormatTest, RoundTripsLikePlainEncoding) {
  const char* kXml =
      "<LINE>one <STAGEDIR>Rising</STAGEDIR> tail</LINE>"
      "<LINE>two</LINE><LINE a=\"x\">three</LINE>";
  std::string dir = EncodeDir(kXml);
  std::string plain = EncodePlain(kXml);
  EXPECT_EQ(*ToXmlString(dir), *ToXmlString(plain));
  EXPECT_EQ(*TextContent(dir), *TextContent(plain));
}

TEST_P(DirectoryFormatTest, ScannerExposesTopRanges) {
  std::string bytes = EncodeDir("<a>1</a><b>2</b><a>3</a>");
  auto scanner = FragmentScanner::Create(bytes);
  ASSERT_TRUE(scanner.ok()) << scanner.status().ToString();
  EXPECT_TRUE(scanner->has_directory());
  ASSERT_EQ(scanner->top_ranges().size(), 3u);
  EXPECT_EQ(*scanner->NameAt(scanner->top_ranges()[0].first), "a");
  EXPECT_EQ(*scanner->NameAt(scanner->top_ranges()[1].first), "b");
  EXPECT_EQ(*scanner->NameAt(scanner->top_ranges()[2].first), "a");
}

TEST_P(DirectoryFormatTest, AllMethodsAgreeWithPlainEncoding) {
  const char* kXml =
      "<LINE>my friend is here</LINE>"
      "<LINE>second <STAGEDIR>Rising</STAGEDIR></LINE>"
      "<LINE>third love line</LINE><OTHER>x</OTHER>";
  std::string dir = EncodeDir(kXml);
  std::string plain = EncodePlain(kXml);
  // getElm.
  EXPECT_EQ(*ToXmlString(*GetElm(dir, "LINE", "LINE", "friend")),
            *ToXmlString(*GetElm(plain, "LINE", "LINE", "friend")));
  EXPECT_EQ(*ToXmlString(*GetElm(dir, "LINE", "STAGEDIR", "")),
            *ToXmlString(*GetElm(plain, "LINE", "STAGEDIR", "")));
  // findKeyInElm.
  EXPECT_EQ(*FindKeyInElm(dir, "LINE", "love"),
            *FindKeyInElm(plain, "LINE", "love"));
  EXPECT_EQ(*FindKeyInElm(dir, "", "Rising"),
            *FindKeyInElm(plain, "", "Rising"));
  // getElmIndex: both the directory fast path and the parent-scoped scan.
  EXPECT_EQ(*ToXmlString(*GetElmIndex(dir, "", "LINE", 2, 3)),
            *ToXmlString(*GetElmIndex(plain, "", "LINE", 2, 3)));
  EXPECT_EQ(*ToXmlString(*GetElmIndex(dir, "LINE", "STAGEDIR", 1, 1)),
            *ToXmlString(*GetElmIndex(plain, "LINE", "STAGEDIR", 1, 1)));
  // unnest: empty tag (fast path) and named tag.
  auto dir_all = Unnest(dir, "");
  auto plain_all = Unnest(plain, "");
  ASSERT_EQ(dir_all->size(), plain_all->size());
  for (size_t i = 0; i < dir_all->size(); ++i) {
    EXPECT_EQ(*ToXmlString((*dir_all)[i]), *ToXmlString((*plain_all)[i]));
  }
  auto dir_lines = Unnest(dir, "LINE");
  auto plain_lines = Unnest(plain, "LINE");
  ASSERT_EQ(dir_lines->size(), plain_lines->size());
  for (size_t i = 0; i < dir_lines->size(); ++i) {
    EXPECT_EQ(*ToXmlString((*dir_lines)[i]),
              *ToXmlString((*plain_lines)[i]));
  }
}

TEST_P(DirectoryFormatTest, RandomDocsAgreeWithPlainEncoding) {
  auto dtd = xml::ParseDtd(datagen::kShakespeareDtd);
  ASSERT_TRUE(dtd.ok());
  for (uint64_t seed = 0; seed < 8; ++seed) {
    datagen::RandomDocOptions opts;
    opts.seed = seed;
    datagen::RandomDocGenerator gen(&*dtd, opts);
    auto doc = gen.Generate("SPEECH");
    ASSERT_TRUE(doc.ok());
    std::vector<const xml::Node*> roots = {doc->get()};
    std::string dir = EncodeWithDirectory(roots, GetParam());
    std::string plain = Encode(roots, GetParam());
    EXPECT_EQ(*ToXmlString(dir), *ToXmlString(plain)) << seed;
    EXPECT_EQ(*ToXmlString(*GetElmIndex(dir, "", "SPEECH", 1, 1)),
              *ToXmlString(*GetElmIndex(plain, "", "SPEECH", 1, 1)))
        << seed;
    EXPECT_EQ(*FindKeyInElm(dir, "SPEAKER", ""),
              *FindKeyInElm(plain, "SPEAKER", "")) << seed;
  }
}

TEST_P(DirectoryFormatTest, EmptyFragmentList) {
  std::string bytes = EncodeWithDirectory({}, GetParam());
  EXPECT_TRUE(HasDirectory(bytes));
  EXPECT_EQ(*ToXmlString(bytes), "");
  EXPECT_TRUE(Unnest(bytes, "")->empty());
}

INSTANTIATE_TEST_SUITE_P(RawAndCompressed, DirectoryFormatTest,
                         ::testing::Values(false, true));

TEST(DirectoryFormatTest2, MalformedDirectoryRejected) {
  // A directory that claims ranges beyond the payload.
  std::string bad = "D";
  bad += '\x01';  // one entry
  bad += '\x00';  // start 0
  bad += '\x7F';  // length 127 (way past payload)
  bad += "R<a/>";
  EXPECT_FALSE(FragmentScanner::Create(bad).ok());
  // A directory with no payload at all.
  std::string empty_payload = "D";
  empty_payload += '\x00';
  EXPECT_FALSE(FragmentScanner::Create(empty_payload).ok());
}

TEST(DirectoryLoaderTest, LoadedDatabaseAnswersQueriesIdentically) {
  datagen::ShakespeareOptions gen_opts;
  gen_opts.plays = 2;
  auto corpus = datagen::ShakespeareGenerator(gen_opts).GenerateCorpus();
  std::vector<const xml::Node*> docs;
  for (const auto& d : corpus) docs.push_back(d.get());

  benchutil::ExperimentOptions plain_opts;
  plain_opts.mapping = benchutil::Mapping::kXorator;
  auto plain = benchutil::BuildExperimentDb(datagen::kShakespeareDtd, docs,
                                            plain_opts);
  ASSERT_TRUE(plain.ok());

  benchutil::ExperimentOptions dir_opts = plain_opts;
  dir_opts.load_options.use_directory = true;
  auto dir = benchutil::BuildExperimentDb(datagen::kShakespeareDtd, docs,
                                          dir_opts);
  ASSERT_TRUE(dir.ok());

  for (const char* sql : {
           "SELECT COUNT(*) AS n FROM speech, "
           "table(unnest(speech_line, 'LINE')) l",
           "SELECT COUNT(*) AS n FROM speech "
           "WHERE findKeyInElm(speech_line, 'LINE', 'love') = 1",
           "SELECT COUNT(*) AS n FROM speech, "
           "table(unnest(getElmIndex(speech_line, '', 'LINE', 2, 2), "
           "'LINE')) u",
       }) {
    auto a = plain->db->Query(sql);
    auto b = dir->db->Query(sql);
    ASSERT_TRUE(a.ok()) << sql;
    ASSERT_TRUE(b.ok()) << sql;
    EXPECT_EQ(a->rows[0][0].AsInt(), b->rows[0][0].AsInt()) << sql;
  }
  // The directory representation costs a few bytes per value.
  EXPECT_GE(dir->db->DataBytes(), plain->db->DataBytes());
}

}  // namespace
}  // namespace xorator::xadt
