#include <gtest/gtest.h>

#include "datagen/dtds.h"
#include "datagen/generators.h"
#include "xadt/xadt.h"
#include "xml/dtd.h"
#include "xml/parser.h"
#include "xml/serializer.h"

namespace xorator::xadt {
namespace {

std::string EncodeXml(const std::string& xml_text, bool compressed) {
  auto frag = xml::ParseFragment(xml_text);
  EXPECT_TRUE(frag.ok()) << frag.status().ToString();
  std::vector<const xml::Node*> roots;
  for (const auto& c : (*frag)->children()) roots.push_back(c.get());
  return Encode(roots, compressed);
}

class XadtFormatTest : public ::testing::TestWithParam<bool> {};

TEST_P(XadtFormatTest, RoundTripsXml) {
  const char* kXml =
      "<SPEECH><SPEAKER>ROMEO</SPEAKER>"
      "<LINE>But soft <STAGEDIR>Rising</STAGEDIR> tail</LINE></SPEECH>"
      "<SPEECH><SPEAKER a=\"1\">JULIET</SPEAKER></SPEECH>";
  std::string bytes = EncodeXml(kXml, GetParam());
  EXPECT_EQ(IsCompressed(bytes), GetParam());
  auto xml_text = ToXmlString(bytes);
  ASSERT_TRUE(xml_text.ok());
  EXPECT_EQ(*xml_text, kXml);
}

TEST_P(XadtFormatTest, TextContent) {
  std::string bytes = EncodeXml("<s>a</s><s>b<t>c</t></s>", GetParam());
  auto text = TextContent(bytes);
  ASSERT_TRUE(text.ok());
  EXPECT_EQ(*text, "abc");
}

TEST_P(XadtFormatTest, GetElmSelfMatch) {
  // The paper's QE1 usage: rootElm == searchElm selects the elements whose
  // own text contains the keyword.
  std::string bytes = EncodeXml(
      "<LINE>my friend is here</LINE><LINE>no match</LINE>", GetParam());
  auto out = GetElm(bytes, "LINE", "LINE", "friend");
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(IsCompressed(*out), GetParam());
  EXPECT_EQ(*ToXmlString(*out), "<LINE>my friend is here</LINE>");
}

TEST_P(XadtFormatTest, GetElmDescendantSearch) {
  std::string bytes = EncodeXml(
      "<LINE>one <STAGEDIR>Rising</STAGEDIR></LINE>"
      "<LINE>two <STAGEDIR>Falling</STAGEDIR></LINE>"
      "<LINE>three</LINE>",
      GetParam());
  auto rising = GetElm(bytes, "LINE", "STAGEDIR", "Rising");
  ASSERT_TRUE(rising.ok());
  EXPECT_EQ(*ToXmlString(*rising),
            "<LINE>one <STAGEDIR>Rising</STAGEDIR></LINE>");
  // Empty searchKey: existence of the element suffices.
  auto with_sd = GetElm(bytes, "LINE", "STAGEDIR", "");
  ASSERT_TRUE(with_sd.ok());
  auto decoded = Decode(*with_sd);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ((*decoded)->ChildElements().size(), 2u);
}

TEST_P(XadtFormatTest, GetElmEmptySearchElmReturnsAllRoots) {
  std::string bytes =
      EncodeXml("<a>1</a><b>2</b><a>3</a>", GetParam());
  auto out = GetElm(bytes, "a", "", "ignored-key");
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(*ToXmlString(*out), "<a>1</a><a>3</a>");
}

TEST_P(XadtFormatTest, GetElmLevelLimit) {
  std::string bytes = EncodeXml(
      "<top><mid><deep>needle</deep></mid></top>", GetParam());
  // deep is 2 levels below top: level 1 misses it, level 2 finds it.
  auto l1 = GetElm(bytes, "top", "deep", "needle", 1);
  ASSERT_TRUE(l1.ok());
  EXPECT_EQ(*ToXmlString(*l1), "");
  auto l2 = GetElm(bytes, "top", "deep", "needle", 2);
  ASSERT_TRUE(l2.ok());
  EXPECT_NE(ToXmlString(*l2)->find("needle"), std::string::npos);
  auto any = GetElm(bytes, "top", "deep", "needle");
  ASSERT_TRUE(any.ok());
  EXPECT_NE(ToXmlString(*any)->find("needle"), std::string::npos);
}

TEST_P(XadtFormatTest, GetElmComposition) {
  // Output of getElm feeds another getElm (the paper's composition).
  std::string bytes = EncodeXml(
      "<aTuple><title>Join Order</title><authors>"
      "<author>Alice</author><author>Bob</author></authors></aTuple>"
      "<aTuple><title>Other</title><authors>"
      "<author>Carol</author></authors></aTuple>",
      GetParam());
  auto tuples = GetElm(bytes, "aTuple", "title", "Join");
  ASSERT_TRUE(tuples.ok());
  auto authors = GetElm(*tuples, "author", "", "");
  ASSERT_TRUE(authors.ok());
  EXPECT_EQ(*ToXmlString(*authors),
            "<author>Alice</author><author>Bob</author>");
}

TEST_P(XadtFormatTest, FindKeyInElm) {
  std::string bytes = EncodeXml(
      "<SPEAKER>HAMLET</SPEAKER><SPEAKER>YORICK</SPEAKER>", GetParam());
  EXPECT_EQ(*FindKeyInElm(bytes, "SPEAKER", "HAMLET"), 1);
  EXPECT_EQ(*FindKeyInElm(bytes, "SPEAKER", "ROMEO"), 0);
  // Empty key: existence test.
  EXPECT_EQ(*FindKeyInElm(bytes, "SPEAKER", ""), 1);
  EXPECT_EQ(*FindKeyInElm(bytes, "GHOST", ""), 0);
  // Empty element: any element's content.
  EXPECT_EQ(*FindKeyInElm(bytes, "", "YORICK"), 1);
  EXPECT_EQ(*FindKeyInElm(bytes, "", "nothing"), 0);
  // Both empty: error per the paper.
  EXPECT_FALSE(FindKeyInElm(bytes, "", "").ok());
}

TEST_P(XadtFormatTest, GetElmIndexTopLevel) {
  // The paper's QE2: second LINE of the fragment (empty parentElm means the
  // childElm is the root element of the XADT value).
  std::string bytes = EncodeXml(
      "<LINE>first</LINE><LINE>second</LINE><LINE>third</LINE>", GetParam());
  auto out = GetElmIndex(bytes, "", "LINE", 2, 2);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(*ToXmlString(*out), "<LINE>second</LINE>");
  auto range = GetElmIndex(bytes, "", "LINE", 2, 3);
  ASSERT_TRUE(range.ok());
  EXPECT_EQ(*ToXmlString(*range), "<LINE>second</LINE><LINE>third</LINE>");
}

TEST_P(XadtFormatTest, GetElmIndexWithParent) {
  std::string bytes = EncodeXml(
      "<authors><author>A1</author><author>A2</author></authors>"
      "<authors><author>B1</author><author>B2</author>"
      "<author>B3</author></authors>",
      GetParam());
  auto out = GetElmIndex(bytes, "authors", "author", 2, 2);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(*ToXmlString(*out), "<author>A2</author><author>B2</author>");
  EXPECT_FALSE(GetElmIndex(bytes, "authors", "", 1, 1).ok());
}

TEST_P(XadtFormatTest, GetElmIndexSameTagOrder) {
  // Sibling positions count same-tag siblings only: OTHER children do not
  // shift LINE positions.
  std::string bytes = EncodeXml(
      "<sp><other>x</other><LINE>first</LINE><other>y</other>"
      "<LINE>second</LINE></sp>",
      GetParam());
  auto out = GetElmIndex(bytes, "sp", "LINE", 2, 2);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(*ToXmlString(*out), "<LINE>second</LINE>");
}

TEST_P(XadtFormatTest, UnnestPaperExample) {
  // Figure 9 of the paper.
  std::string bytes = EncodeXml(
      "<speaker>s1</speaker><speaker>s2</speaker>", GetParam());
  auto rows = Unnest(bytes, "speaker");
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 2u);
  EXPECT_EQ(*TextContent((*rows)[0]), "s1");
  EXPECT_EQ(*TextContent((*rows)[1]), "s2");
  // Empty tag: every top-level fragment.
  auto all = Unnest(bytes, "");
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all->size(), 2u);
}

TEST_P(XadtFormatTest, EmptyValueBehaves) {
  std::string bytes = Encode({}, GetParam());
  EXPECT_EQ(*ToXmlString(bytes), "");
  EXPECT_EQ(*FindKeyInElm(bytes, "x", ""), 0);
  auto out = GetElm(bytes, "x", "", "");
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(*ToXmlString(*out), "");
}

INSTANTIATE_TEST_SUITE_P(RawAndCompressed, XadtFormatTest,
                         ::testing::Values(false, true));

TEST(XadtCompressionTest, RepeatedTagsCompressWell) {
  std::string xml_text;
  for (int i = 0; i < 200; ++i) {
    xml_text += "<LINE>word</LINE>";
  }
  std::string raw = EncodeXml(xml_text, false);
  std::string compressed = EncodeXml(xml_text, true);
  EXPECT_LT(static_cast<double>(compressed.size()),
            static_cast<double>(raw.size()) * 0.6);
}

TEST(XadtCompressionTest, UniqueTagsCompressPoorly) {
  // A single small fragment: the dictionary overhead dominates.
  std::string raw = EncodeXml("<a>x</a>", false);
  std::string compressed = EncodeXml("<a>x</a>", true);
  EXPECT_GE(compressed.size() + 2, raw.size());
}

TEST(XadtCompressionTest, AdvisorFollowsTwentyPercentRule) {
  auto frag = xml::ParseFragment(
      "<LINE>a</LINE><LINE>b</LINE><LINE>c</LINE><LINE>d</LINE>"
      "<LINE>e</LINE><LINE>f</LINE><LINE>g</LINE><LINE>h</LINE>");
  ASSERT_TRUE(frag.ok());
  std::vector<const xml::Node*> roots;
  for (const auto& c : (*frag)->children()) roots.push_back(c.get());
  CompressionAdvisor advisor(0.2);
  advisor.AddSample(roots);
  EXPECT_GT(advisor.raw_bytes(), 0u);
  // Many repeated tags: compression wins.
  EXPECT_TRUE(advisor.UseCompression());

  CompressionAdvisor strict(0.99);
  strict.AddSample(roots);
  EXPECT_FALSE(strict.UseCompression());

  CompressionAdvisor empty(0.2);
  EXPECT_FALSE(empty.UseCompression());
}

TEST(XadtErrorsTest, BadInputsRejected) {
  EXPECT_FALSE(Decode("Zgarbage").ok());
  EXPECT_FALSE(GetElm("Rx", "", "a", "b").ok());
  EXPECT_FALSE(GetElmIndex("R<a/>", "a", "", 1, 1).ok());
  // Truncated compressed payloads fail cleanly.
  std::string bytes = EncodeXml("<a><b>text</b></a>", true);
  std::string truncated = bytes.substr(0, bytes.size() / 2);
  EXPECT_FALSE(Decode(truncated).ok());
}

TEST(XadtPropertyTest, RandomDocsRoundTripBothFormats) {
  auto dtd = xml::ParseDtd(datagen::kSigmodDtd);
  ASSERT_TRUE(dtd.ok());
  for (uint64_t seed = 0; seed < 20; ++seed) {
    datagen::RandomDocOptions opts;
    opts.seed = seed;
    datagen::RandomDocGenerator gen(&*dtd, opts);
    auto doc = gen.Generate("PP");
    ASSERT_TRUE(doc.ok()) << doc.status().ToString();
    std::vector<const xml::Node*> roots = {doc->get()};
    std::string raw = Encode(roots, false);
    std::string compressed = Encode(roots, true);
    auto raw_xml = ToXmlString(raw);
    auto comp_xml = ToXmlString(compressed);
    ASSERT_TRUE(raw_xml.ok());
    ASSERT_TRUE(comp_xml.ok());
    EXPECT_EQ(*raw_xml, *comp_xml) << "seed " << seed;
    EXPECT_EQ(*TextContent(raw), *TextContent(compressed));
  }
}

}  // namespace
}  // namespace xorator::xadt
