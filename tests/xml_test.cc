#include <gtest/gtest.h>

#include "xml/dom.h"
#include "xml/parser.h"
#include "xml/serializer.h"

namespace xorator::xml {
namespace {

TEST(XmlParserTest, SimpleDocument) {
  auto doc = ParseDocument("<a><b>hi</b><c/></a>");
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  const Node& root = *doc->root;
  EXPECT_EQ(root.name(), "a");
  ASSERT_EQ(root.children().size(), 2u);
  EXPECT_EQ(root.children()[0]->name(), "b");
  EXPECT_EQ(root.children()[0]->TextContent(), "hi");
  EXPECT_EQ(root.children()[1]->name(), "c");
  EXPECT_TRUE(root.children()[1]->children().empty());
}

TEST(XmlParserTest, Attributes) {
  auto doc = ParseDocument(R"(<a x="1" y='two &amp; three'/>)");
  ASSERT_TRUE(doc.ok());
  ASSERT_EQ(doc->root->attributes().size(), 2u);
  EXPECT_EQ(*doc->root->FindAttribute("x"), "1");
  EXPECT_EQ(*doc->root->FindAttribute("y"), "two & three");
  EXPECT_EQ(doc->root->FindAttribute("z"), nullptr);
}

TEST(XmlParserTest, EntitiesAndCharRefs) {
  auto doc = ParseDocument("<a>&lt;tag&gt; &amp; &quot;q&quot; &#65;&#x42;</a>");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->root->TextContent(), "<tag> & \"q\" AB");
}

TEST(XmlParserTest, Cdata) {
  auto doc = ParseDocument("<a><![CDATA[<not><parsed> & raw]]></a>");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->root->TextContent(), "<not><parsed> & raw");
}

TEST(XmlParserTest, CommentsAndPisIgnored) {
  auto doc = ParseDocument(
      "<?xml version=\"1.0\"?><!-- hi --><a><!-- in --><b/><?pi data?></a>");
  ASSERT_TRUE(doc.ok());
  ASSERT_EQ(doc->root->children().size(), 1u);
}

TEST(XmlParserTest, DoctypeInternalSubsetCaptured) {
  auto doc = ParseDocument(
      "<!DOCTYPE PLAY [<!ELEMENT PLAY (#PCDATA)>]><PLAY>x</PLAY>");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->doctype_name, "PLAY");
  EXPECT_NE(doc->internal_subset.find("<!ELEMENT PLAY"), std::string::npos);
}

TEST(XmlParserTest, WhitespaceStrippedByDefault) {
  auto doc = ParseDocument("<a>\n  <b>x</b>\n</a>");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->root->children().size(), 1u);
  ParseOptions keep;
  keep.strip_whitespace_text = false;
  auto doc2 = ParseDocument("<a>\n  <b>x</b>\n</a>", keep);
  ASSERT_TRUE(doc2.ok());
  EXPECT_EQ(doc2->root->children().size(), 3u);
}

TEST(XmlParserTest, MismatchedTagFails) {
  EXPECT_FALSE(ParseDocument("<a><b></a></b>").ok());
}

TEST(XmlParserTest, UnterminatedFails) {
  EXPECT_FALSE(ParseDocument("<a><b>").ok());
  EXPECT_FALSE(ParseDocument("<a attr=>x</a>").ok());
  EXPECT_FALSE(ParseDocument("<a>&unknown;</a>").ok());
}

TEST(XmlParserTest, ContentAfterRootFails) {
  EXPECT_FALSE(ParseDocument("<a/><b/>").ok());
}

TEST(XmlParserTest, ErrorsIncludePosition) {
  auto r = ParseDocument("<a>\n<b>\n</c>\n</a>");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("line 3"), std::string::npos)
      << r.status().ToString();
}

TEST(XmlParserTest, FragmentParsing) {
  auto frag = ParseFragment("<s>a</s><s>b</s>text");
  ASSERT_TRUE(frag.ok()) << frag.status().ToString();
  EXPECT_EQ((*frag)->name(), "#fragment");
  EXPECT_EQ((*frag)->children().size(), 3u);
  EXPECT_EQ((*frag)->TextContent(), "abtext");
}

TEST(XmlSerializerTest, EscapesSpecials) {
  auto elem = Node::Element("a");
  elem->AddAttribute("k", "a\"b<c");
  elem->AddChild(Node::Text("1 < 2 & 3 > 2"));
  std::string out = Serialize(*elem);
  EXPECT_EQ(out, "<a k=\"a&quot;b&lt;c\">1 &lt; 2 &amp; 3 &gt; 2</a>");
}

TEST(XmlSerializerTest, EmptyElementUsesSelfClosing) {
  auto elem = Node::Element("empty");
  EXPECT_EQ(Serialize(*elem), "<empty/>");
}

TEST(XmlSerializerTest, RoundTrip) {
  const char* kInput =
      "<PLAY><TITLE>Romeo &amp; Juliet</TITLE>"
      "<ACT n=\"1\"><SPEECH><SPEAKER>ROMEO</SPEAKER>"
      "<LINE>But soft <STAGEDIR>Rising</STAGEDIR> what light</LINE>"
      "</SPEECH></ACT></PLAY>";
  auto doc = ParseDocument(kInput);
  ASSERT_TRUE(doc.ok());
  std::string out = Serialize(*doc->root);
  EXPECT_EQ(out, kInput);
  // Parsing the serialization again yields the same serialization.
  auto doc2 = ParseDocument(out);
  ASSERT_TRUE(doc2.ok());
  EXPECT_EQ(Serialize(*doc2->root), out);
}

TEST(XmlSerializerTest, IndentedOutput) {
  auto doc = ParseDocument("<a><b>x</b><c/></a>");
  ASSERT_TRUE(doc.ok());
  SerializeOptions opts;
  opts.indent = 2;
  std::string out = Serialize(*doc->root, opts);
  EXPECT_NE(out.find("\n  <b>"), std::string::npos);
}

TEST(DomTest, CloneIsDeepAndIndependent) {
  auto doc = ParseDocument("<a x=\"1\"><b>t</b></a>");
  ASSERT_TRUE(doc.ok());
  auto copy = doc->root->Clone();
  EXPECT_EQ(Serialize(*copy), Serialize(*doc->root));
  EXPECT_EQ(copy->parent(), nullptr);
  EXPECT_NE(copy.get(), doc->root.get());
}

TEST(DomTest, ChildElementHelpers) {
  auto doc = ParseDocument("<a><b>1</b><c/><b>2</b></a>");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->root->ChildElements().size(), 3u);
  EXPECT_EQ(doc->root->ChildElements("b").size(), 2u);
  ASSERT_NE(doc->root->FirstChildElement("c"), nullptr);
  EXPECT_EQ(doc->root->FirstChildElement("zz"), nullptr);
}

TEST(DomTest, ParentLinks) {
  auto doc = ParseDocument("<a><b><c/></b></a>");
  ASSERT_TRUE(doc.ok());
  const Node* b = doc->root->FirstChildElement("b");
  const Node* c = b->FirstChildElement("c");
  EXPECT_EQ(c->parent(), b);
  EXPECT_EQ(b->parent(), doc->root.get());
}

TEST(DecodeEntitiesTest, Basics) {
  EXPECT_EQ(*DecodeEntities("a&amp;b"), "a&b");
  EXPECT_EQ(*DecodeEntities("&#x20AC;"), "\xE2\x82\xAC");  // euro sign
  EXPECT_FALSE(DecodeEntities("&bogus;").ok());
  EXPECT_FALSE(DecodeEntities("&#xZZ;").ok());
  EXPECT_FALSE(DecodeEntities("&amp").ok());
}

// Hostile-input hardening (ParserLimits): every bomb below must come back
// as a clean kParseError — never a crash, stack overflow, or runaway
// allocation.

TEST(ParserLimitsTest, DeepNestingBombRejected) {
  // 100k open tags; without the depth bound this recurses once per level
  // and smashes the stack long before the input runs out.
  std::string bomb;
  for (int i = 0; i < 100000; ++i) bomb += "<a>";
  auto doc = ParseDocument(bomb);
  ASSERT_FALSE(doc.ok());
  EXPECT_EQ(doc.status().code(), StatusCode::kParseError);
  EXPECT_NE(doc.status().message().find("nesting deeper"), std::string::npos);
}

TEST(ParserLimitsTest, NestingAtTheLimitStillParses) {
  ParseOptions options;
  options.limits.max_depth = 64;
  std::string deep;
  for (int i = 0; i < 64; ++i) deep += "<a>";
  deep += "x";
  for (int i = 0; i < 64; ++i) deep += "</a>";
  EXPECT_TRUE(ParseDocument(deep, options).ok());
  EXPECT_FALSE(ParseDocument("<r>" + deep + "</r>", options).ok());
}

TEST(ParserLimitsTest, OversizedAttributeRejected) {
  ParseOptions options;
  options.limits.max_token_bytes = 1024;
  std::string doc = "<a v=\"" + std::string(2048, 'x') + "\"/>";
  auto parsed = ParseDocument(doc, options);
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.status().code(), StatusCode::kParseError);
}

TEST(ParserLimitsTest, OversizedNameAndTextRejected) {
  ParseOptions options;
  options.limits.max_token_bytes = 256;
  std::string long_name = "<" + std::string(512, 'n') + "/>";
  EXPECT_FALSE(ParseDocument(long_name, options).ok());
  std::string long_text = "<a>" + std::string(512, 't') + "</a>";
  EXPECT_FALSE(ParseDocument(long_text, options).ok());
  std::string long_cdata =
      "<a><![CDATA[" + std::string(512, 'c') + "]]></a>";
  EXPECT_FALSE(ParseDocument(long_cdata, options).ok());
}

TEST(ParserLimitsTest, OversizedInputRejectedUpFront) {
  ParseOptions options;
  options.limits.max_input_bytes = 100;
  std::string doc = "<a>" + std::string(200, 'x') + "</a>";
  auto parsed = ParseDocument(doc, options);
  ASSERT_FALSE(parsed.ok());
  EXPECT_NE(parsed.status().message().find("exceeds the parser limit"),
            std::string::npos);
  EXPECT_FALSE(ParseFragment(doc, options).ok());
}

TEST(ParserLimitsTest, ZeroDisablesALimit) {
  ParseOptions options;
  options.limits.max_depth = 0;
  std::string deep;
  for (int i = 0; i < 500; ++i) deep += "<a>";
  deep += "x";
  for (int i = 0; i < 500; ++i) deep += "</a>";
  EXPECT_TRUE(ParseDocument(deep, options).ok());
}

TEST(ParserLimitsTest, FragmentsHonorTheDepthBound) {
  std::string bomb;
  for (int i = 0; i < 100000; ++i) bomb += "<a>";
  auto frag = ParseFragment(bomb);
  ASSERT_FALSE(frag.ok());
  EXPECT_EQ(frag.status().code(), StatusCode::kParseError);
}

}  // namespace
}  // namespace xorator::xml
