#include <gtest/gtest.h>

#include "benchutil/fixture.h"
#include "datagen/dtds.h"
#include "datagen/generators.h"
#include <functional>

#include "dtdgraph/simplify.h"
#include "xml/dtd.h"
#include "xpath/xpath.h"

namespace xorator::xpath {
namespace {

using benchutil::BuildExperimentDb;
using benchutil::ExperimentDb;
using benchutil::ExperimentOptions;
using benchutil::Mapping;

// ------------------------------------------------------------------ parser

TEST(PathParserTest, StepsAndAxes) {
  auto path = ParsePath("/PLAY/ACT//LINE");
  ASSERT_TRUE(path.ok()) << path.status().ToString();
  ASSERT_EQ(path->steps.size(), 3u);
  EXPECT_FALSE(path->steps[0].descendant);
  EXPECT_EQ(path->steps[1].name, "ACT");
  EXPECT_TRUE(path->steps[2].descendant);
  EXPECT_EQ(path->ToString(), "/PLAY/ACT//LINE");
}

TEST(PathParserTest, Predicates) {
  auto path = ParsePath(
      "/SPEECH[contains(SPEAKER,'ROMEO')][position() = 2]"
      "/LINE[contains(., 'love')]");
  ASSERT_TRUE(path.ok()) << path.status().ToString();
  ASSERT_EQ(path->steps.size(), 2u);
  ASSERT_EQ(path->steps[0].predicates.size(), 2u);
  EXPECT_EQ(path->steps[0].predicates[0].kind,
            Predicate::Kind::kContainsChild);
  EXPECT_EQ(path->steps[0].predicates[0].child, "SPEAKER");
  EXPECT_EQ(path->steps[0].predicates[0].key, "ROMEO");
  EXPECT_EQ(path->steps[0].predicates[1].kind, Predicate::Kind::kPosition);
  EXPECT_EQ(path->steps[0].predicates[1].position, 2);
  EXPECT_EQ(path->steps[1].predicates[0].kind,
            Predicate::Kind::kContainsSelf);
}

TEST(PathParserTest, Errors) {
  EXPECT_FALSE(ParsePath("").ok());
  EXPECT_FALSE(ParsePath("PLAY").ok());
  EXPECT_FALSE(ParsePath("/PLAY[").ok());
  EXPECT_FALSE(ParsePath("/PLAY[foo(.)]").ok());
  EXPECT_FALSE(ParsePath("/PLAY[contains(., 'x'").ok());
  EXPECT_FALSE(ParsePath("/PLAY[position() = ]").ok());
  EXPECT_FALSE(ParsePath("/PLAY[contains(., unquoted)]").ok());
}

// -------------------------------------------------------------- SQL shapes

class TranslatorSqlTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto dtd = xml::ParseDtd(datagen::kShakespeareDtd);
    ASSERT_TRUE(dtd.ok());
    auto simplified = dtdgraph::Simplify(*dtd);
    ASSERT_TRUE(simplified.ok());
    dtd_ = std::make_unique<dtdgraph::SimplifiedDtd>(std::move(*simplified));
    auto hybrid = benchutil::MapDtd(datagen::kShakespeareDtd,
                                    Mapping::kHybrid);
    auto xorator = benchutil::MapDtd(datagen::kShakespeareDtd,
                                     Mapping::kXorator);
    ASSERT_TRUE(hybrid.ok());
    ASSERT_TRUE(xorator.ok());
    hybrid_ = std::make_unique<mapping::MappedSchema>(std::move(*hybrid));
    xorator_ = std::make_unique<mapping::MappedSchema>(std::move(*xorator));
  }

  std::string Sql(const mapping::MappedSchema& schema, const char* path_text,
                  OutputMode mode = OutputMode::kCount) {
    auto path = ParsePath(path_text);
    EXPECT_TRUE(path.ok()) << path.status().ToString();
    Translator translator(&schema, dtd_.get());
    auto sql = translator.ToSql(*path, mode);
    EXPECT_TRUE(sql.ok()) << path_text << ": " << sql.status().ToString();
    return sql.ok() ? *sql : "";
  }

  std::unique_ptr<dtdgraph::SimplifiedDtd> dtd_;
  std::unique_ptr<mapping::MappedSchema> hybrid_;
  std::unique_ptr<mapping::MappedSchema> xorator_;
};

TEST_F(TranslatorSqlTest, RelationChainBecomesJoins) {
  std::string sql = Sql(*hybrid_, "/PLAY/ACT/SCENE");
  EXPECT_NE(sql.find("FROM play play_1, act act_2, scene scene_3"),
            std::string::npos)
      << sql;
  EXPECT_NE(sql.find("act_2.act_parentID = play_1.playID"),
            std::string::npos) << sql;
  EXPECT_NE(sql.find("scene_3.scene_parentCODE = 'ACT'"), std::string::npos)
      << sql;
}

TEST_F(TranslatorSqlTest, XadtStepsBecomeGetElm) {
  std::string sql =
      Sql(*xorator_, "/PLAY/ACT/SCENE/SPEECH/LINE[contains(., 'love')]");
  EXPECT_NE(sql.find("getElm(speech_4.speech_line, 'LINE', 'LINE', 'love')"),
            std::string::npos)
      << sql;
  EXPECT_NE(sql.find("table(unnest("), std::string::npos) << sql;
}

TEST_F(TranslatorSqlTest, PositionPredicate) {
  std::string hybrid_sql =
      Sql(*hybrid_, "/PLAY/ACT/SCENE/SPEECH/LINE[position() = 2]");
  EXPECT_NE(hybrid_sql.find("line_5.line_childOrder = 2"), std::string::npos)
      << hybrid_sql;
  std::string xorator_sql =
      Sql(*xorator_, "/PLAY/ACT/SCENE/SPEECH/LINE[position() = 2]");
  EXPECT_NE(xorator_sql.find("getElmIndex(speech_4.speech_line, '', 'LINE', "
                             "2, 2)"),
            std::string::npos)
      << xorator_sql;
}

TEST_F(TranslatorSqlTest, ChildPredicateDialects) {
  // SPEAKER is a relation under Hybrid (join) and an XADT column under
  // XORator (findKeyInElm).
  std::string hybrid_sql =
      Sql(*hybrid_, "/PLAY/ACT/SCENE/SPEECH[contains(SPEAKER, 'ROMEO')]");
  EXPECT_NE(hybrid_sql.find("speaker_value LIKE '%ROMEO%'"),
            std::string::npos)
      << hybrid_sql;
  std::string xorator_sql =
      Sql(*xorator_, "/PLAY/ACT/SCENE/SPEECH[contains(SPEAKER, 'ROMEO')]");
  EXPECT_NE(xorator_sql.find(
                "findKeyInElm(speech_4.speech_speaker, 'SPEAKER', 'ROMEO')"),
            std::string::npos)
      << xorator_sql;
}

TEST_F(TranslatorSqlTest, InlinedPredicate) {
  std::string sql = Sql(*hybrid_, "/PLAY[contains(TITLE, 'Romeo')]/ACT");
  EXPECT_NE(sql.find("play_1.play_title LIKE '%Romeo%'"), std::string::npos)
      << sql;
}

TEST_F(TranslatorSqlTest, InlinedTerminalUsesIsNotNull) {
  std::string sql = Sql(*hybrid_, "/PLAY/ACT/TITLE");
  EXPECT_NE(sql.find("act_2.act_title IS NOT NULL"), std::string::npos)
      << sql;
  std::string text_sql =
      Sql(*hybrid_, "/PLAY/ACT/TITLE", OutputMode::kText);
  EXPECT_NE(text_sql.find("act_2.act_title AS text"), std::string::npos)
      << text_sql;
}

TEST_F(TranslatorSqlTest, UnsupportedPathsReportErrors) {
  Translator hybrid(hybrid_.get(), dtd_.get());
  auto bad_root = ParsePath("/NOTANELEMENT/ACT");
  EXPECT_FALSE(hybrid.ToSql(*bad_root, OutputMode::kCount).ok());
  auto bad_child = ParsePath("/PLAY/LINE");
  EXPECT_FALSE(hybrid.ToSql(*bad_child, OutputMode::kCount).ok());
}

// --------------------------------------------------------- end-to-end runs

class XPathEndToEndTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    datagen::ShakespeareOptions opts;
    opts.plays = 3;
    corpus_ = new std::vector<std::unique_ptr<xml::Node>>(
        datagen::ShakespeareGenerator(opts).GenerateCorpus());
    std::vector<const xml::Node*> docs;
    for (const auto& d : *corpus_) docs.push_back(d.get());
    ExperimentOptions hybrid_opts;
    hybrid_opts.mapping = Mapping::kHybrid;
    auto hybrid = BuildExperimentDb(datagen::kShakespeareDtd, docs,
                                    hybrid_opts);
    ASSERT_TRUE(hybrid.ok()) << hybrid.status().ToString();
    hybrid_ = new ExperimentDb(std::move(*hybrid));
    ExperimentOptions xorator_opts;
    xorator_opts.mapping = Mapping::kXorator;
    auto xorator = BuildExperimentDb(datagen::kShakespeareDtd, docs,
                                     xorator_opts);
    ASSERT_TRUE(xorator.ok()) << xorator.status().ToString();
    xorator_ = new ExperimentDb(std::move(*xorator));
    auto dtd = xml::ParseDtd(datagen::kShakespeareDtd);
    ASSERT_TRUE(dtd.ok());
    auto simplified = dtdgraph::Simplify(*dtd);
    ASSERT_TRUE(simplified.ok());
    dtd_ = new dtdgraph::SimplifiedDtd(std::move(*simplified));
  }

  static void TearDownTestSuite() {
    delete corpus_;
    delete hybrid_;
    delete xorator_;
    delete dtd_;
    corpus_ = nullptr;
    hybrid_ = nullptr;
    xorator_ = nullptr;
    dtd_ = nullptr;
  }

  static int64_t CountOn(ExperimentDb* db,
                         const mapping::MappedSchema& schema,
                         const char* path_text) {
    auto path = ParsePath(path_text);
    EXPECT_TRUE(path.ok());
    Translator translator(&schema, dtd_);
    auto sql = translator.ToSql(*path, OutputMode::kCount);
    EXPECT_TRUE(sql.ok()) << path_text << ": " << sql.status().ToString();
    if (!sql.ok()) return -1;
    auto r = db->db->Query(*sql);
    EXPECT_TRUE(r.ok()) << *sql << "\n -> " << r.status().ToString();
    if (!r.ok()) return -1;
    return r->rows[0][0].AsInt();
  }

  static std::vector<std::unique_ptr<xml::Node>>* corpus_;
  static ExperimentDb* hybrid_;
  static ExperimentDb* xorator_;
  static dtdgraph::SimplifiedDtd* dtd_;
};

std::vector<std::unique_ptr<xml::Node>>* XPathEndToEndTest::corpus_ = nullptr;
ExperimentDb* XPathEndToEndTest::hybrid_ = nullptr;
ExperimentDb* XPathEndToEndTest::xorator_ = nullptr;
dtdgraph::SimplifiedDtd* XPathEndToEndTest::dtd_ = nullptr;

TEST_F(XPathEndToEndTest, SamePathSameCountOnBothMappings) {
  // These paths avoid relation-child predicate joins, so both dialects must
  // count identically.
  const char* kPaths[] = {
      "/PLAY",
      "/PLAY/ACT",
      "/PLAY/ACT/SCENE",
      "/PLAY/ACT/SCENE/SPEECH",
      "/PLAY/ACT/SCENE/SPEECH/LINE[contains(., 'love')]",
      "/PLAY/ACT/SCENE/SPEECH/LINE[position() = 2]",
      "/PLAY[contains(TITLE, 'Romeo')]/ACT",
  };
  for (const char* path : kPaths) {
    int64_t h = CountOn(hybrid_, hybrid_->schema, path);
    int64_t x = CountOn(xorator_, xorator_->schema, path);
    EXPECT_GE(h, 0) << path;
    EXPECT_EQ(h, x) << path;
  }
}

TEST_F(XPathEndToEndTest, CountsMatchDomGroundTruth) {
  // Ground truth computed on the DOM corpus directly.
  int64_t love_lines = 0;
  std::function<void(const xml::Node&)> walk = [&](const xml::Node& n) {
    if (n.name() == "LINE" &&
        n.TextContent().find("love") != std::string::npos) {
      ++love_lines;
    }
    for (const auto& c : n.children()) {
      if (c->is_element()) walk(*c);
    }
  };
  for (const auto& doc : *corpus_) walk(*doc);
  // The path restricts lines to speeches inside scenes inside acts; the
  // corpus also puts speeches in prologues/epilogues/inducts, so the path
  // count is at most the DOM count — and the XADT self-match uses the full
  // subtree text, as TextContent does.
  int64_t path_count = CountOn(
      xorator_, xorator_->schema,
      "/PLAY/ACT/SCENE/SPEECH/LINE[contains(., 'love')]");
  EXPECT_GT(path_count, 0);
  EXPECT_LE(path_count, love_lines);
}

TEST_F(XPathEndToEndTest, TextModeReturnsLineText) {
  auto path = ParsePath("/PLAY/ACT/SCENE/SPEECH/LINE[contains(., 'love')]");
  Translator translator(&xorator_->schema, dtd_);
  auto sql = translator.ToSql(*path, OutputMode::kText);
  ASSERT_TRUE(sql.ok());
  auto r = xorator_->db->Query(*sql);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_GT(r->rows.size(), 0u);
  for (const auto& row : r->rows) {
    EXPECT_NE(row[0].AsString().find("love"), std::string::npos);
  }
}

}  // namespace
}  // namespace xorator::xpath
