// libFuzzer harness for the wire protocol (DESIGN.md section 17). The
// property under test: frame decoding is TOTAL — no byte sequence may
// crash the header or payload decoders, drive an allocation larger than
// the payload itself paid for, or come back with anything but a clean
// kParseError/kCorruption — and every successful decode must survive an
// encode/decode round trip unchanged (the codec is its own inverse).
//
// Input layout: byte 0 picks the decoder (mod 6):
//   0  full frame: header decode over bytes [1, 9), then the matching
//      payload decoder over the rest (malformed lengths, truncated frames
//      and oversize payloads all land here);
//   1  DecodeQueryRequest over the rest, flags = byte 1;
//   2  DecodeCancelRequest;  3  DecodeResult;  4  DecodeError;
//   5  DecodeStats.
//
// Two build modes share this file, exactly like page_fuzz.cc:
//   * default: `LLVMFuzzerTestOneInput` only, for `clang -fsanitize=fuzzer`
//     (the `frame_fuzz` target, see CMakeLists.txt here);
//   * -DXO_FUZZ_STANDALONE: adds a main() that replays corpus files (or
//     directories) deterministically — registered as the
//     `frame_fuzz_corpus` ctest so the checked-in seeds run under every
//     sanitizer configuration without a fuzzing engine.

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <string_view>

#include "server/protocol.h"

namespace {

using xorator::Result;
using xorator::Status;
using xorator::StatusCode;
using namespace xorator::server;

void Check(bool ok, const char* what) {
  if (!ok) {
    std::fprintf(stderr, "frame_fuzz: invariant violated: %s\n", what);
    std::abort();
  }
}

/// Every decoder failure must be a clean parse/corruption status — any
/// other code means some internal error leaked into the hostile-input
/// path.
void CheckFailureCode(const Status& status, const char* decoder) {
  const StatusCode code = status.code();
  if (code != StatusCode::kParseError && code != StatusCode::kCorruption) {
    std::fprintf(stderr, "frame_fuzz: %s failed with unexpected code %d\n",
                 decoder, static_cast<int>(code));
    std::abort();
  }
}

void FuzzQueryRequest(std::string_view payload, uint8_t flags) {
  Result<QueryRequest> request = DecodeQueryRequest(payload, flags);
  if (!request.ok()) {
    CheckFailureCode(request.status(), "DecodeQueryRequest");
    return;
  }
  Check(request->sql.size() <= kMaxSqlBytes,
        "decoded SQL exceeds kMaxSqlBytes");
  // Round trip: re-encode, split the frame, re-decode, compare.
  const std::string frame =
      EncodeQueryRequest(FrameType::kQuery, request.value());
  Result<FrameHeader> header =
      DecodeFrameHeader(std::string_view(frame).substr(0, kFrameHeaderBytes));
  Check(header.ok(), "re-encoded query frame header does not decode");
  Result<QueryRequest> again = DecodeQueryRequest(
      std::string_view(frame).substr(kFrameHeaderBytes), header->flags);
  Check(again.ok(), "re-encoded query payload does not decode");
  Check(again->query_id == request->query_id &&
            again->deadline_millis == request->deadline_millis &&
            again->max_memory_bytes == request->max_memory_bytes &&
            again->skip_quarantined == request->skip_quarantined &&
            again->sql == request->sql,
        "query request round trip changed the request");
}

void FuzzCancelRequest(std::string_view payload) {
  Result<CancelRequest> request = DecodeCancelRequest(payload);
  if (!request.ok()) {
    CheckFailureCode(request.status(), "DecodeCancelRequest");
  }
}

void FuzzResult(std::string_view payload) {
  Result<ResultPayload> result = DecodeResult(payload);
  if (!result.ok()) {
    CheckFailureCode(result.status(), "DecodeResult");
    return;
  }
  // Row/column counts were bounded by the payload bytes themselves.
  Check(result->columns.size() <= payload.size(),
        "decoded column count outruns the payload");
  Check(result->rows.size() <= payload.size(),
        "decoded row count outruns the payload");
  Result<std::string> frame = EncodeResult(result.value());
  if (!frame.ok()) return;  // over the payload cap; nothing to round-trip
  Result<ResultPayload> again =
      DecodeResult(std::string_view(*frame).substr(kFrameHeaderBytes));
  Check(again.ok(), "re-encoded result payload does not decode");
  Check(again->columns == result->columns && again->rows == result->rows &&
            again->plan == result->plan,
        "result round trip changed the payload");
}

void FuzzError(std::string_view payload) {
  Result<ErrorPayload> error = DecodeError(payload);
  if (!error.ok()) {
    CheckFailureCode(error.status(), "DecodeError");
    return;
  }
  // The payload -> Status -> payload path must preserve what the client's
  // backoff layer keys on: retryability and the hint.
  const Status status = StatusFromError(error.value());
  Check(status.retry_after_millis() == error->retry_after_millis,
        "retry-after hint lost in StatusFromError");
  Check(!status.ok(), "error payload decoded to an OK status");
}

void FuzzStats(std::string_view payload) {
  Result<StatsPayload> stats = DecodeStats(payload);
  if (!stats.ok()) {
    CheckFailureCode(stats.status(), "DecodeStats");
    return;
  }
  const std::string frame = EncodeStats(stats.value());
  Result<StatsPayload> again =
      DecodeStats(std::string_view(frame).substr(kFrameHeaderBytes));
  Check(again.ok(), "re-encoded stats payload does not decode");
  Check(again->rows == stats->rows, "stats round trip changed the rows");
}

void FuzzFullFrame(std::string_view bytes) {
  if (bytes.size() < kFrameHeaderBytes) {
    Result<FrameHeader> header = DecodeFrameHeader(bytes);
    if (!header.ok()) CheckFailureCode(header.status(), "DecodeFrameHeader");
    return;
  }
  Result<FrameHeader> header =
      DecodeFrameHeader(bytes.substr(0, kFrameHeaderBytes));
  if (!header.ok()) {
    CheckFailureCode(header.status(), "DecodeFrameHeader");
    return;
  }
  Check(header->payload_bytes <= kMaxPayloadBytes,
        "header decode accepted an oversize payload length");
  // Serve whatever bytes follow as the payload, exactly as the server
  // does after ReadFull — including the truncated case where fewer bytes
  // than payload_bytes exist (the decoders must fail closed, not read
  // past the buffer).
  std::string_view payload = bytes.substr(kFrameHeaderBytes);
  if (payload.size() > header->payload_bytes) {
    payload = payload.substr(0, header->payload_bytes);
  }
  switch (header->type) {
    case FrameType::kQuery:
    case FrameType::kExecute:
      FuzzQueryRequest(payload, header->flags);
      break;
    case FrameType::kCancel:
      FuzzCancelRequest(payload);
      break;
    case FrameType::kStats:
      break;  // no payload to decode
    case FrameType::kResult:
      FuzzResult(payload);
      break;
    case FrameType::kError:
      FuzzError(payload);
      break;
    case FrameType::kStatsResult:
      FuzzStats(payload);
      break;
  }
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  if (size < 1) return 0;
  const uint8_t mode = data[0] % 6;
  const std::string_view rest(reinterpret_cast<const char*>(data) + 1,
                              size - 1);
  switch (mode) {
    case 0:
      FuzzFullFrame(rest);
      break;
    case 1: {
      const uint8_t flags = rest.empty() ? 0 : static_cast<uint8_t>(rest[0]);
      FuzzQueryRequest(rest.empty() ? rest : rest.substr(1), flags);
      break;
    }
    case 2:
      FuzzCancelRequest(rest);
      break;
    case 3:
      FuzzResult(rest);
      break;
    case 4:
      FuzzError(rest);
      break;
    default:
      FuzzStats(rest);
      break;
  }
  return 0;
}

#ifdef XO_FUZZ_STANDALONE

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <vector>

namespace {

int ReplayFile(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "frame_fuzz: cannot read %s\n", path.c_str());
    return 1;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string bytes = buf.str();
  LLVMFuzzerTestOneInput(reinterpret_cast<const uint8_t*>(bytes.data()),
                         bytes.size());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  size_t replayed = 0;
  int failures = 0;
  for (int i = 1; i < argc; ++i) {
    std::filesystem::path arg(argv[i]);
    if (std::filesystem::is_directory(arg)) {
      // Sort for a deterministic replay order across platforms.
      std::vector<std::filesystem::path> files;
      for (const auto& entry :
           std::filesystem::recursive_directory_iterator(arg)) {
        if (entry.is_regular_file()) files.push_back(entry.path());
      }
      std::sort(files.begin(), files.end());
      for (const auto& f : files) {
        failures += ReplayFile(f);
        ++replayed;
      }
    } else {
      failures += ReplayFile(arg);
      ++replayed;
    }
  }
  if (replayed == 0) {
    std::fprintf(stderr, "usage: frame_fuzz_replay <corpus-dir-or-file>...\n");
    return 1;
  }
  std::fprintf(stderr, "frame_fuzz: replayed %zu corpus input(s)\n", replayed);
  return failures == 0 ? 0 : 1;
}

#endif  // XO_FUZZ_STANDALONE
