// libFuzzer harness for the on-disk page formats (DESIGN.md section 16).
// The property under test: NO 8 KB byte image may crash the slotted-page
// accessors, the B+-tree node validator, or the WAL header/record parsers,
// and no successful access may hand out a view escaping the page buffer —
// every corrupt image comes back as a clean kCorruption/kNotFound instead.
//
// Input layout: byte 0 picks the decoder (mod 3: slotted page, B+-tree
// node, WAL stream); the rest is the raw image, zero-padded or truncated
// to kPageSize for the page modes and taken verbatim for the WAL mode.
//
// Two build modes share this file, exactly like row_codec_fuzz.cc:
//   * default: `LLVMFuzzerTestOneInput` only, for `clang -fsanitize=fuzzer`
//     (the `page_fuzz` target, see CMakeLists.txt here);
//   * -DXO_FUZZ_STANDALONE: adds a main() that replays corpus files (or
//     directories) deterministically — registered as the
//     `page_fuzz_corpus` ctest so the checked-in seeds run under every
//     sanitizer configuration without a fuzzing engine.

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <string_view>

#include "ordb/bptree.h"
#include "ordb/page.h"
#include "ordb/wal.h"

namespace {

using xorator::ordb::kPageSize;
using xorator::ordb::kWalHeaderBytes;
using xorator::ordb::ParseWalHeader;
using xorator::ordb::ParseWalRecordHeader;
using xorator::ordb::SlottedPage;
using xorator::ordb::ValidateBPlusTreeNode;

void Check(bool ok, const char* what) {
  if (!ok) {
    std::fprintf(stderr, "page_fuzz: invariant violated: %s\n", what);
    std::abort();
  }
}

void FuzzSlottedPage(std::string& image) {
  SlottedPage page(image.data());
  // Checksum helpers are total over any image.
  const bool crc_ok = xorator::ordb::VerifyPageChecksum(image.data());
  static_cast<void>(crc_ok);
  const uint16_t slots = page.slot_count();
  // Every slot either yields a view inside the image or a clean error;
  // scanning one past slot_count must report NotFound, never read wild.
  for (uint32_t s = 0; s <= slots && s < 1024; ++s) {
    auto rec = page.Get(static_cast<uint16_t>(s));
    if (rec.ok()) {
      const char* lo = rec->data();
      const char* hi = lo + rec->size();
      Check(lo >= image.data() && hi <= image.data() + kPageSize,
            "SlottedPage::Get view escapes the page");
    }
  }
  if (page.initialized()) {
    const size_t free_before = page.FreeSpace();
    Check(free_before <= kPageSize, "FreeSpace exceeds the page size");
    if (page.Fits(11)) {
      auto slot = page.Insert("fuzz-record");
      if (slot.ok()) {
        auto back = page.Get(*slot);
        Check(back.ok() && *back == "fuzz-record",
              "inserted record does not read back");
        Check(page.Delete(*slot).ok(), "deleting a fresh slot failed");
      }
    }
  }
}

void FuzzBPlusTreeNode(const std::string& image) {
  // The validator is the gate every B+-tree fetch passes through; it must
  // classify any image without crashing, and an all-default page (type 0,
  // count 0) must stay acceptable or recovery could not format new nodes.
  Check(ValidateBPlusTreeNode(std::string_view(image.data(), kPageSize))
            .code() != xorator::StatusCode::kInvalidArgument,
        "node validator rejected the size it was given");
}

void FuzzWal(std::string_view bytes) {
  auto header = ParseWalHeader(bytes);
  if (!header.ok()) return;
  // Walk the record stream the way RecoverFromWal does: a bad record
  // header simply ends the walk (torn tail semantics).
  size_t pos = kWalHeaderBytes;
  while (bytes.size() - pos >= xorator::ordb::kWalRecordHeaderBytes) {
    auto rec = ParseWalRecordHeader(bytes.substr(pos));
    if (!rec.ok()) break;
    if (bytes.size() - pos < xorator::ordb::kWalRecordHeaderBytes + kPageSize) {
      break;
    }
    pos += xorator::ordb::kWalRecordHeaderBytes + kPageSize;
  }
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  if (size < 1) return 0;
  const uint8_t mode = data[0] % 3;
  const std::string_view rest(reinterpret_cast<const char*>(data) + 1,
                              size - 1);
  if (mode == 2) {
    FuzzWal(rest);
    return 0;
  }
  std::string image(kPageSize, '\0');
  std::memcpy(image.data(), rest.data(), std::min(rest.size(), kPageSize));
  if (mode == 0) {
    FuzzSlottedPage(image);
  } else {
    FuzzBPlusTreeNode(image);
  }
  return 0;
}

#ifdef XO_FUZZ_STANDALONE

#include <filesystem>
#include <fstream>
#include <sstream>
#include <vector>

namespace {

int ReplayFile(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "page_fuzz: cannot read %s\n", path.c_str());
    return 1;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string bytes = buf.str();
  LLVMFuzzerTestOneInput(reinterpret_cast<const uint8_t*>(bytes.data()),
                         bytes.size());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  size_t replayed = 0;
  int failures = 0;
  for (int i = 1; i < argc; ++i) {
    std::filesystem::path arg(argv[i]);
    if (std::filesystem::is_directory(arg)) {
      // Sort for a deterministic replay order across platforms.
      std::vector<std::filesystem::path> files;
      for (const auto& entry :
           std::filesystem::recursive_directory_iterator(arg)) {
        if (entry.is_regular_file()) files.push_back(entry.path());
      }
      std::sort(files.begin(), files.end());
      for (const auto& f : files) {
        failures += ReplayFile(f);
        ++replayed;
      }
    } else {
      failures += ReplayFile(arg);
      ++replayed;
    }
  }
  if (replayed == 0) {
    std::fprintf(stderr, "usage: page_fuzz_replay <corpus-dir-or-file>...\n");
    return 1;
  }
  std::fprintf(stderr, "page_fuzz: replayed %zu corpus input(s)\n", replayed);
  return failures == 0 ? 0 : 1;
}

#endif  // XO_FUZZ_STANDALONE
