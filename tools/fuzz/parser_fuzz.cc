// libFuzzer harness for the XML parser (hostile-input hardening,
// DESIGN.md section 12). The property under test: NO byte sequence may
// crash, overflow the stack, or allocate without bound — every input
// either parses or comes back as a clean kParseError.
//
// Two build modes share this file:
//   * default: `LLVMFuzzerTestOneInput` only, for `clang -fsanitize=fuzzer`
//     (the `parser_fuzz` target, see CMakeLists.txt here);
//   * -DXO_FUZZ_STANDALONE: adds a main() that replays corpus files (or
//     whole directories of them) deterministically — registered as the
//     `parser_fuzz_corpus` ctest so the checked-in seeds run under every
//     sanitizer configuration without a fuzzing engine.

#include <cstddef>
#include <cstdint>
#include <string>

#include "common/status.h"
#include "xml/parser.h"
#include "xml/serializer.h"

namespace {

// Tight limits keep individual fuzz iterations fast and make the limit
// checks themselves part of the fuzzed surface.
xorator::xml::ParseOptions FuzzOptions() {
  xorator::xml::ParseOptions options;
  options.limits.max_depth = 64;
  options.limits.max_token_bytes = 1u << 16;
  options.limits.max_input_bytes = 1u << 20;
  return options;
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  const std::string input(reinterpret_cast<const char*>(data), size);
  const xorator::xml::ParseOptions options = FuzzOptions();
  auto doc = xorator::xml::ParseDocument(input, options);
  if (doc.ok()) {
    // A successful parse must serialize, and the serialization must parse
    // again — a cheap structural invariant on whatever DOM was built.
    std::string out = xorator::xml::Serialize(*doc->root);
    auto again = xorator::xml::ParseDocument(out, options);
    XO_DISCARD_STATUS(std::move(again),
                      "round-trip output may legitimately exceed the limits");
  }
  XO_DISCARD_STATUS(xorator::xml::ParseFragment(input, options),
                    "fuzz input; errors expected");
  return 0;
}

#ifdef XO_FUZZ_STANDALONE

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <vector>

namespace {

int ReplayFile(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "parser_fuzz: cannot read %s\n", path.c_str());
    return 1;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string bytes = buf.str();
  LLVMFuzzerTestOneInput(reinterpret_cast<const uint8_t*>(bytes.data()),
                         bytes.size());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  size_t replayed = 0;
  int failures = 0;
  for (int i = 1; i < argc; ++i) {
    std::filesystem::path arg(argv[i]);
    if (std::filesystem::is_directory(arg)) {
      // Sort for a deterministic replay order across platforms.
      std::vector<std::filesystem::path> files;
      for (const auto& entry :
           std::filesystem::recursive_directory_iterator(arg)) {
        if (entry.is_regular_file()) files.push_back(entry.path());
      }
      std::sort(files.begin(), files.end());
      for (const auto& f : files) {
        failures += ReplayFile(f);
        ++replayed;
      }
    } else {
      failures += ReplayFile(arg);
      ++replayed;
    }
  }
  if (replayed == 0) {
    std::fprintf(stderr, "usage: parser_fuzz_replay <corpus-dir-or-file>...\n");
    return 1;
  }
  std::fprintf(stderr, "parser_fuzz: replayed %zu corpus input(s)\n", replayed);
  return failures == 0 ? 0 : 1;
}

#endif  // XO_FUZZ_STANDALONE
