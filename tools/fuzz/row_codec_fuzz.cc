// libFuzzer harness for the typed row codec (src/ordb/row_codec.h;
// DESIGN.md section 14). The property under test: NO byte sequence may
// crash RowView::Parse or read outside the record — every input either
// parses, after which all accessors are total, or comes back as a clean
// error; and the two decode paths (RowView and DecodeTuple) always agree.
//
// Input layout: byte 0 is the column count (mod 13), the next n bytes pick
// column types (mod 6, covering kNull..kXadt), and the rest is the record.
//
// Two build modes share this file, exactly like parser_fuzz.cc:
//   * default: `LLVMFuzzerTestOneInput` only, for `clang -fsanitize=fuzzer`
//     (the `row_codec_fuzz` target, see CMakeLists.txt here);
//   * -DXO_FUZZ_STANDALONE: adds a main() that replays corpus files (or
//     directories) deterministically — registered as the
//     `row_codec_fuzz_corpus` ctest so the checked-in seeds run under every
//     sanitizer configuration without a fuzzing engine.

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <string_view>

#include "ordb/row_codec.h"
#include "ordb/tuple.h"
#include "ordb/value.h"

namespace {

using xorator::ordb::DecodeTuple;
using xorator::ordb::EncodeTuple;
using xorator::ordb::RowView;
using xorator::ordb::TableSchema;
using xorator::ordb::Tuple;
using xorator::ordb::TypeId;
using xorator::ordb::Value;

void Check(bool ok, const char* what) {
  if (!ok) {
    std::fprintf(stderr, "row_codec_fuzz: invariant violated: %s\n", what);
    std::abort();
  }
}

bool SameValue(const Value& a, const Value& b) {
  if (a.is_null() != b.is_null()) return false;
  if (a.is_null()) return true;
  return a.type() == b.type() && a.Equals(b);
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  if (size < 1) return 0;
  const size_t ncols = data[0] % 13;
  if (size < 1 + ncols) return 0;
  TableSchema schema;
  for (size_t i = 0; i < ncols; ++i) {
    schema.columns.push_back(
        {"c" + std::to_string(i), static_cast<TypeId>(data[1 + i] % 6)});
  }
  const std::string_view record(
      reinterpret_cast<const char*>(data) + 1 + ncols, size - 1 - ncols);

  auto view = RowView::Parse(schema, record);
  auto decoded = DecodeTuple(schema, record);
  Check(view.ok() == decoded.ok(),
        "RowView::Parse and DecodeTuple disagree on validity");
  if (!view.ok()) return 0;

  // All accessors are total after a successful Parse, and in-place column
  // decoding agrees with the materialized tuple.
  Tuple tuple;
  view->Materialize(&tuple);
  Check(tuple.size() == ncols, "Materialize produced the wrong arity");
  for (size_t i = 0; i < view->columns(); ++i) {
    Check(SameValue(view->column(i).ToValue(), tuple[i]),
          "column(i).ToValue() diverges from Materialize");
    Check(SameValue(tuple[i], (*decoded)[i]),
          "RowView materialization diverges from DecodeTuple");
  }

  // Re-encoding the materialized tuple must parse back to the same values.
  // (Byte equality is deliberately not required: GetVarint accepts
  // non-minimal length prefixes, and a non-null value in a kNull column
  // round-trips as null.)
  std::string reencoded;
  EncodeTuple(schema, tuple, &reencoded);
  auto again = RowView::Parse(schema, reencoded);
  Check(again.ok(), "re-encoded row fails to parse");
  Tuple tuple2;
  again->Materialize(&tuple2);
  for (size_t i = 0; i < ncols; ++i) {
    Check(SameValue(tuple[i], tuple2[i]), "encode/parse round trip unstable");
  }
  return 0;
}

#ifdef XO_FUZZ_STANDALONE

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <vector>

namespace {

int ReplayFile(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "row_codec_fuzz: cannot read %s\n", path.c_str());
    return 1;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string bytes = buf.str();
  LLVMFuzzerTestOneInput(reinterpret_cast<const uint8_t*>(bytes.data()),
                         bytes.size());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  size_t replayed = 0;
  int failures = 0;
  for (int i = 1; i < argc; ++i) {
    std::filesystem::path arg(argv[i]);
    if (std::filesystem::is_directory(arg)) {
      // Sort for a deterministic replay order across platforms.
      std::vector<std::filesystem::path> files;
      for (const auto& entry :
           std::filesystem::recursive_directory_iterator(arg)) {
        if (entry.is_regular_file()) files.push_back(entry.path());
      }
      std::sort(files.begin(), files.end());
      for (const auto& f : files) {
        failures += ReplayFile(f);
        ++replayed;
      }
    } else {
      failures += ReplayFile(arg);
      ++replayed;
    }
  }
  if (replayed == 0) {
    std::fprintf(stderr,
                 "usage: row_codec_fuzz_replay <corpus-dir-or-file>...\n");
    return 1;
  }
  std::fprintf(stderr, "row_codec_fuzz: replayed %zu corpus input(s)\n",
               replayed);
  return failures == 0 ? 0 : 1;
}

#endif  // XO_FUZZ_STANDALONE
