#!/usr/bin/env python3
"""Repository lint for xorator (DESIGN.md section 6 conventions).

Checks, in order of appearance in DESIGN.md:

  guard      src/**/*.h must use the XORATOR_<PATH>_H_ include-guard pattern
             (ifndef/define pair at the top, matching endif comment at the
             bottom) derived from the path below src/.
  throw      Library code (src/) must not throw or catch: fallible functions
             return Status/Result<T> (common/status.h).
  docs       Namespace-scope classes, structs, enums, and free functions
             declared in src/ headers must carry a `///` doc comment.
  banned     rand/srand (seeded std::mt19937_64 only), strcpy/strcat/sprintf/
             gets (bounds-unsafe), and raw printf (library code reports
             through Status messages; diagnostics go to stderr) are banned
             in src/.
  discard    A bare `(void)call(...)` discard is banned everywhere: a
             deliberately ignored Status/Result must use
             XO_DISCARD_STATUS(expr, "why"), and other unused results should
             be named or restructured. `(void)variable;` (no call) is fine.
  raw-mutex  Library code (src/) must not use the raw standard locking
             primitives (std::mutex, std::shared_mutex, std::lock_guard,
             std::unique_lock, ...): they are invisible to Clang Thread
             Safety Analysis. Use the annotated xo::Mutex / xo::SharedMutex
             and their guards from common/mutex.h (DESIGN.md section 10) —
             that header is the single allowlisted wrapper site.
  raw-pin    The raw buffer-pool pin protocol (FetchPage/NewPage/Unpin) is
             banned everywhere outside src/ordb/buffer_pool.{h,cc}: pins
             are owned by the typestate-checked PageRef guard returned by
             BufferPool::Fetch/Create (DESIGN.md section 11), so balance
             is structural instead of manual.
  guard-loop Every operator `::Next(...)` definition in src/ordb/executor.cc
             must poll the query guard (a CheckPoint() call somewhere in its
             body), so that deadlines, cancellation, and memory budgets stay
             responsive no matter which operators a plan composes
             (DESIGN.md section 12).
  lock-rank  Every xo::Mutex / xo::SharedMutex declared in library code must
             be constructed with an explicit LockRank (common/mutex.h), so
             the runtime lock-rank detector can police DESIGN.md section
             10's acquisition hierarchy. A rank-less declaration does not
             compile (the default constructor is deleted), but the lint
             additionally requires the rank to appear on the declaration
             itself — not fed in through an init-list variable — so the
             hierarchy stays greppable.
  raw-bytes  Decode-path files (the slotted page, B+-tree, WAL, heap
             overflow, varint, row codec, XADT and XML parsing sources) must
             not touch raw bytes directly: memcpy/memmove, reinterpret_cast
             and pointer arithmetic on buffer data are banned there. All
             byte access goes through the checked xo::Span / BoundedReader
             accessors of src/common/span.h — the single file allowed to
             hold the unsafe primitives (DESIGN.md section 16).
  lifetime   Library functions returning a borrowed view (std::string_view,
             std::span, RowView, ValueView) must declare what the view
             borrows from with XO_LIFETIME_BOUND (common/lifetime.h) on a
             parameter or on `this`, so Clang builds catch dangling uses
             (DESIGN.md section 14). Functions returning views of static
             storage (the enum-name tables) are allowlisted by name.

Usage:
  lint.py --root <repo-root>      lint the tree, exit 1 on findings
  lint.py --self-test             run the checks against tools/lint/testdata
                                  fixtures and verify expected findings
"""

import argparse
import pathlib
import re
import sys

# Directories whose sources are library code (strict rules).
LIB_DIRS = ("src",)
# Directories additionally scanned for the discard rule.
ALL_DIRS = ("src", "tests", "bench", "examples", "tools")

BANNED_CALLS = {
    "rand": "use a seeded std::mt19937_64 (reproducibility)",
    "srand": "use a seeded std::mt19937_64 (reproducibility)",
    "strcpy": "bounds-unsafe; use std::string or std::memcpy with a size",
    "strcat": "bounds-unsafe; use std::string",
    "sprintf": "bounds-unsafe; use std::snprintf or std::string",
    "gets": "bounds-unsafe; never acceptable",
    "printf": "library code reports through Status; diagnostics use "
              "std::fprintf(stderr, ...)",
}

# `(void)name(...)` or `(void)obj.method(...)` / `(void)p->method(...)`:
# a call result dropped without justification.
DISCARD_RE = re.compile(r"\(\s*void\s*\)\s*[A-Za-z_][\w:]*(?:(?:\.|->)\w+)*\s*\(")

# Raw standard locking primitives, banned in library code: Clang Thread
# Safety Analysis cannot see them, so locks taken this way are unchecked.
RAW_MUTEX_RE = re.compile(
    r"\bstd\s*::\s*(?:(?:recursive_|timed_|recursive_timed_|shared_)?mutex"
    r"|lock_guard|unique_lock|shared_lock|scoped_lock)\b")
# The annotated wrapper layer itself — the one file allowed to touch the
# raw primitives (everything else goes through xo::Mutex & friends).
RAW_MUTEX_ALLOWLIST = ("src/common/mutex.h",)

# A declaration of an annotated mutex: the type followed by a variable
# name (a `*` or `&` after the type is a pointer/reference and carries no
# rank; `MutexLock` and friends do not match the \b boundary).
LOCK_RANK_DECL_RE = re.compile(
    r"\bxo\s*::\s*(?:Shared)?Mutex\b\s+[A-Za-z_]\w*\s*[{(;=]")
# The wrapper layer itself (declares the types, not instances of them).
LOCK_RANK_ALLOWLIST = ("src/common/mutex.h",)

# The raw pin protocol, banned outside the buffer pool itself: every other
# pin is owned by a PageRef guard (BufferPool::Fetch/Create), whose
# typestate makes leak/double-release a compile error under Clang.
RAW_PIN_RE = re.compile(r"\b(?:FetchPage|NewPage|Unpin)\s*\(")
RAW_PIN_ALLOWLIST = ("src/ordb/buffer_pool.h", "src/ordb/buffer_pool.cc")

# Decode-path sources: every file that interprets on-disk or wire bytes.
# Matched by path suffix (like GUARD_LOOP_SUFFIXES) so the self-test fixture
# under testdata/src/ordb/ exercises the same rule. src/common/span.h is the
# single site allowed to hold the raw primitives; it is simply not listed.
RAW_BYTES_SUFFIXES = (
    "common/varint.h", "common/varint.cc",
    "ordb/row_codec.h", "ordb/row_codec.cc",
    "ordb/page.h", "ordb/page.cc",
    "ordb/bptree.h", "ordb/bptree.cc",
    "ordb/heap_file.cc",
    "ordb/wal.h", "ordb/wal.cc",
    "ordb/tuple.cc",
    "ordb/database.cc",
    "xadt/xadt.cc", "xadt/scanner.cc",
    "xml/parser.cc",
    "server/protocol.h", "server/protocol.cc",
)
# memcpy/memmove (qualified or not), reinterpret_cast, and pointer
# arithmetic on a buffer (`.data() + off`, `data_ + off`, `buf + pos` is
# too ambiguous to match textually — the first three cover every decode
# idiom this repo ever used).
RAW_BYTES_RE = re.compile(
    r"\bmemcpy\s*\(|\bmemmove\s*\(|\breinterpret_cast\b"
    r"|\bdata\s*\(\s*\)\s*\+|\bdata_\s*\+")

# Files whose `::Next(...)` definitions are executor operator loops and must
# poll the query guard (DESIGN.md section 12). Matched by path suffix so the
# self-test fixture under testdata/src/ordb/ exercises the same rule.
GUARD_LOOP_SUFFIXES = ("ordb/executor.cc",)
GUARD_LOOP_RE = re.compile(r"::\s*Next\s*\(")

# Declarations (and in-class definitions) of functions returning a borrowed
# view. Out-of-class definitions (`Type Class::Fn(...)`) deliberately do not
# match: the attribute lives on the declaration.
VIEW_RETURN_RE = re.compile(
    r"\b(?:Result\s*<\s*std\s*::\s*string_view\s*>|std\s*::\s*string_view"
    r"|std\s*::\s*span\s*<[^;{}()]*>|RowView|ValueView)\s+"
    r"([A-Za-z_]\w*)\s*\(")
# A view-returning match is only a declaration when the line up to it holds
# nothing but declaration specifiers (this skips locals and expressions,
# e.g. `const std::string_view v(payload);`).
VIEW_DECL_PREFIX_RE = re.compile(
    r"^\s*(?:\[\[nodiscard\]\]\s*|static\s+|inline\s+|constexpr\s+|"
    r"virtual\s+|friend\s+|explicit\s+)*$")
# Functions whose views aim at static storage (enum-name tables): there is
# no owner to bind the lifetime to.
LIFETIME_STATIC_ALLOWLIST = frozenset({
    "StatusCodeToString", "ColumnTypeName", "TypeName", "CompareOpName",
    "HealthStateName",
})

DECL_RE = re.compile(
    r"^(?:template\s*<.*>\s*)?"
    r"(?:class|struct|enum(?:\s+class)?)\s+(?:\[\[\w+\]\]\s*)?\w+"
    r"\s*(?:final\s*)?(?::[^;]*)?(?:\{|$)"
)
FUNC_RE = re.compile(
    r"^(?:\[\[nodiscard\]\]\s+)?"
    r"(?:inline\s+|constexpr\s+|static\s+)*"
    r"(?:[\w:<>,\s&*]+?)\s+\w+\s*\("
)


class Finding:
    def __init__(self, path, line, rule, message):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def __str__(self):
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def strip_comments_and_strings(text):
    """Blanks out comments and string/char literals, preserving line
    structure, so the token checks do not fire on prose or literals."""
    out = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        if c == "/" and i + 1 < n and text[i + 1] == "/":
            j = text.find("\n", i)
            j = n if j == -1 else j
            out.append(" " * (j - i))
            i = j
        elif c == "/" and i + 1 < n and text[i + 1] == "*":
            j = text.find("*/", i + 2)
            j = n if j == -1 else j + 2
            out.append("".join(ch if ch == "\n" else " " for ch in text[i:j]))
            i = j
        elif c in "\"'":
            quote = c
            j = i + 1
            while j < n and text[j] != quote:
                j += 2 if text[j] == "\\" else 1
            j = min(j + 1, n)
            out.append(quote + " " * (j - i - 2) + (quote if j - i >= 2 else ""))
            i = j
        else:
            out.append(c)
            i += 1
    return "".join(out)


def expected_guard(root, path):
    rel = path.relative_to(root / "src")
    token = re.sub(r"[^A-Za-z0-9]", "_", str(rel)).upper()
    return f"XORATOR_{token}_"


def check_guard(root, path, lines, findings):
    guard = expected_guard(root, path)
    meaningful = [l for l in lines if l.strip() and not l.strip().startswith("//")]
    if len(meaningful) < 2 or \
            meaningful[0].strip() != f"#ifndef {guard}" or \
            meaningful[1].strip() != f"#define {guard}":
        findings.append(Finding(path, 1, "guard",
                                f"header must open with '#ifndef {guard}' / "
                                f"'#define {guard}'"))
        return
    tail = [l.strip() for l in lines if l.strip()]
    if not tail or tail[-1] != f"#endif  // {guard}":
        findings.append(Finding(path, len(lines), "guard",
                                f"header must close with '#endif  // {guard}'"))


def check_throw(path, stripped_lines, findings):
    for no, line in enumerate(stripped_lines, 1):
        if re.search(r"\bthrow\b", line) or re.search(r"\bcatch\s*\(", line):
            findings.append(Finding(path, no, "throw",
                                    "library code must not throw or catch; "
                                    "return a Status (common/status.h)"))


def check_banned(path, stripped_lines, findings):
    for no, line in enumerate(stripped_lines, 1):
        for name, why in BANNED_CALLS.items():
            # Reject bare calls; allow qualified safe cousins (std::snprintf,
            # fprintf) which do not match the \b...\( pattern for `name`.
            for m in re.finditer(r"\b" + name + r"\s*\(", line):
                before = line[:m.start()]
                if re.search(r"[\w.>]$", before.rstrip()) and \
                        not before.rstrip().endswith("std::"):
                    continue  # method call or prefixed identifier
                findings.append(Finding(path, no, "banned",
                                        f"'{name}' is banned: {why}"))


def check_raw_mutex(root, path, stripped_lines, findings):
    rel = path.relative_to(root).as_posix()
    if rel in RAW_MUTEX_ALLOWLIST:
        return
    for no, line in enumerate(stripped_lines, 1):
        if RAW_MUTEX_RE.search(line):
            findings.append(Finding(path, no, "raw-mutex",
                                    "raw std locking primitive is invisible "
                                    "to Thread Safety Analysis; use "
                                    "xo::Mutex / xo::SharedMutex and their "
                                    "guards (common/mutex.h)"))


def check_lock_rank(root, path, stripped_text, findings):
    """Every annotated-mutex declaration names its LockRank in place.

    The deleted default constructor already forces *some* rank expression;
    this check pins it to the declaration (`xo::Mutex mu_{
    xo::LockRank::k...};`) so `grep LockRank` reproduces the whole lock
    hierarchy, and a reviewer never has to chase an initializer through
    constructor plumbing to learn where a mutex sits in DESIGN.md
    section 10's order."""
    rel = path.relative_to(root).as_posix()
    if rel in LOCK_RANK_ALLOWLIST:
        return
    n = len(stripped_text)
    for m in LOCK_RANK_DECL_RE.finditer(stripped_text):
        # The declaration runs from the match to its terminating `;`.
        j = stripped_text.find(";", m.start())
        j = n if j == -1 else j
        if "LockRank" not in stripped_text[m.start():j]:
            line = stripped_text.count("\n", 0, m.start()) + 1
            findings.append(Finding(path, line, "lock-rank",
                                    "xo::Mutex / xo::SharedMutex declared "
                                    "without an explicit LockRank; state "
                                    "the rank on the declaration (e.g. "
                                    "xo::Mutex mu_{xo::LockRank::kWal};) "
                                    "so the DESIGN.md section 10 hierarchy "
                                    "stays greppable"))


def check_raw_pin(root, path, stripped_lines, findings):
    rel = path.relative_to(root).as_posix()
    if rel in RAW_PIN_ALLOWLIST:
        return
    for no, line in enumerate(stripped_lines, 1):
        if RAW_PIN_RE.search(line):
            findings.append(Finding(path, no, "raw-pin",
                                    "raw FetchPage/NewPage/Unpin outside "
                                    "src/ordb/buffer_pool.{h,cc}; hold the "
                                    "pin through a PageRef guard from "
                                    "BufferPool::Fetch/Create instead"))


def check_raw_bytes(root, path, stripped_lines, findings):
    """Decode-path files must not touch raw bytes directly.

    Every offset and length these files handle was decoded from attacker
    (or failing-disk) bytes; a raw memcpy or `data() + off` there is an
    unchecked trust of that input. The checked accessors in
    src/common/span.h (xo::Span, BoundedReader, LoadFixed/StoreFixed,
    ViewBytes, CopyInto, MoveWithin) bound every access and fail closed
    with kCorruption; span.h itself is the one place allowed to hold the
    unsafe primitives (DESIGN.md section 16)."""
    rel = path.relative_to(root).as_posix()
    if not rel.endswith(RAW_BYTES_SUFFIXES):
        return
    for no, line in enumerate(stripped_lines, 1):
        if RAW_BYTES_RE.search(line):
            findings.append(Finding(path, no, "raw-bytes",
                                    "raw byte access in a decode path; use "
                                    "the checked xo::Span / BoundedReader "
                                    "accessors (common/span.h, DESIGN.md "
                                    "section 16) instead of memcpy/"
                                    "reinterpret_cast/pointer arithmetic"))


def check_guard_loop(root, path, stripped_text, findings):
    """Every `::Next(...)` definition body must contain a CheckPoint call.

    Operator Next loops are the engine's cancellation points: an operator
    that never polls the guard makes whole plans immune to deadlines,
    Cancel(), and memory budgets. The check brace-matches each definition
    body (a `{` after the parameter list; calls and declarations end with
    `;` and are skipped) and looks for the token inside it."""
    rel = path.relative_to(root).as_posix()
    if not rel.endswith(GUARD_LOOP_SUFFIXES):
        return
    n = len(stripped_text)
    for m in GUARD_LOOP_RE.finditer(stripped_text):
        # Match the parameter list's parentheses.
        i = stripped_text.find("(", m.start())
        depth, j = 1, i + 1
        while j < n and depth:
            if stripped_text[j] == "(":
                depth += 1
            elif stripped_text[j] == ")":
                depth -= 1
            j += 1
        # Skip qualifiers (const, noexcept, override, whitespace) up to the
        # body's opening brace; anything else means this was a call.
        k = j
        while k < n and (stripped_text[k].isspace() or
                         stripped_text[k].isalnum() or
                         stripped_text[k] == "_"):
            k += 1
        if k >= n or stripped_text[k] != "{":
            continue
        depth, b = 1, k + 1
        while b < n and depth:
            if stripped_text[b] == "{":
                depth += 1
            elif stripped_text[b] == "}":
                depth -= 1
            b += 1
        if "CheckPoint" not in stripped_text[k:b]:
            line = stripped_text.count("\n", 0, m.start()) + 1
            findings.append(Finding(path, line, "guard-loop",
                                    "operator Next() never polls the query "
                                    "guard; add a CheckPoint() call so "
                                    "deadlines/cancel/budgets stay "
                                    "responsive (DESIGN.md section 12)"))


def check_lifetime(path, stripped_text, findings):
    """View-returning declarations must carry XO_LIFETIME_BOUND.

    A function handing out a std::string_view / std::span / RowView /
    ValueView borrows storage owned by something else; the annotation names
    that something (a parameter, or `this`) so Clang's lifetime analysis can
    reject dangling uses at the call site (DESIGN.md section 14). The check
    scans the declaration from the return type to the terminating `;` or
    body `{` and looks for the token anywhere in it."""
    n = len(stripped_text)
    for m in VIEW_RETURN_RE.finditer(stripped_text):
        if m.group(1) in LIFETIME_STATIC_ALLOWLIST:
            continue
        line_start = stripped_text.rfind("\n", 0, m.start()) + 1
        if not VIEW_DECL_PREFIX_RE.match(stripped_text[line_start:m.start()]):
            continue
        # The declaration runs to the first `;` or `{` outside parentheses
        # (attribute arguments like XO_CALLABLE_WHEN("...") nest in parens).
        depth, j = 1, m.end()
        while j < n:
            c = stripped_text[j]
            if c == "(":
                depth += 1
            elif c == ")":
                depth -= 1
            elif depth == 0 and c in ";{":
                break
            j += 1
        if "XO_LIFETIME_BOUND" not in stripped_text[m.start():j]:
            line = stripped_text.count("\n", 0, m.start()) + 1
            findings.append(Finding(path, line, "lifetime",
                                    f"'{m.group(1)}' returns a borrowed view "
                                    "without XO_LIFETIME_BOUND; annotate the "
                                    "owning parameter or `this` "
                                    "(common/lifetime.h, DESIGN.md section "
                                    "14), or allowlist it if the view aims "
                                    "at static storage"))


def check_discard(path, stripped_lines, findings):
    for no, line in enumerate(stripped_lines, 1):
        if DISCARD_RE.search(line):
            findings.append(Finding(path, no, "discard",
                                    "bare (void) call discard; use "
                                    "XO_DISCARD_STATUS(expr, \"why\") for "
                                    "Status/Result, or name the value"))


def relevant_decl(line):
    s = line.strip()
    if not s or s.startswith(("#", "//", "/*", "*", "}", "using ", "typedef ",
                              "extern ", "friend ", "namespace")):
        return False
    if s.startswith(("XORATOR_", "XO_")):  # macro invocations
        return False
    return bool(DECL_RE.match(s))


def check_docs(path, lines, stripped_lines, findings):
    """Namespace-scope classes/structs/enums in headers need /// docs."""
    depth = 0  # brace depth; declarations at depth 0 are namespace scope
    ns_depth = 0
    for no, raw in enumerate(lines, 1):
        line = stripped_lines[no - 1]
        s = raw.strip()
        if re.match(r"^namespace\b", s) and "{" in line:
            ns_depth += 1
            depth += line.count("{") - line.count("}")
            continue
        at_top = depth == ns_depth
        if at_top and relevant_decl(raw):
            # Look upward for a `///` block (skip blank and template lines).
            k = no - 2
            while k >= 0 and (not lines[k].strip() or
                              lines[k].strip().startswith("template")):
                k -= 1
            if k < 0 or not lines[k].strip().startswith("///"):
                findings.append(Finding(path, no, "docs",
                                        "public declaration needs a /// doc "
                                        "comment"))
        depth += line.count("{") - line.count("}")
        if depth < ns_depth:
            ns_depth = depth
    return


def lint_file(root, path, findings, lib):
    try:
        text = path.read_text(encoding="utf-8")
    except UnicodeDecodeError:
        findings.append(Finding(path, 1, "encoding", "file is not UTF-8"))
        return
    lines = text.splitlines()
    stripped_text = strip_comments_and_strings(text)
    stripped = stripped_text.splitlines()
    # Pad in case the file does not end with a newline symmetry.
    while len(stripped) < len(lines):
        stripped.append("")
    if lib:
        if path.suffix == ".h":
            check_guard(root, path, lines, findings)
            check_docs(path, lines, stripped, findings)
        check_throw(path, stripped, findings)
        check_banned(path, stripped, findings)
        check_raw_mutex(root, path, stripped, findings)
        check_lock_rank(root, path, stripped_text, findings)
        check_lifetime(path, stripped_text, findings)
    # The pin protocol is global: tests and benches hold pins through
    # PageRef guards too.
    check_raw_pin(root, path, stripped, findings)
    check_raw_bytes(root, path, stripped, findings)
    check_guard_loop(root, path, stripped_text, findings)
    check_discard(path, stripped, findings)


def run(root):
    findings = []
    for d in ALL_DIRS:
        base = root / d
        if not base.is_dir():
            continue
        lib = d in LIB_DIRS
        for path in sorted(base.rglob("*")):
            if path.suffix not in (".h", ".cc", ".cpp", ".hpp"):
                continue
            if "testdata" in path.parts:
                continue
            lint_file(root, path, findings, lib)
    return findings


def self_test(script_dir):
    """Runs the checks over the fixtures and verifies each expected finding
    (and that the clean fixture produces none)."""
    testdata = script_dir / "testdata"
    cases = {
        "bad_guard.h": {"guard"},
        "bad_throw.h": {"throw", "docs"},
        "bad_banned.cc": {"banned"},
        "bad_discard.cc": {"discard"},
        "bad_raw_mutex.cc": {"raw-mutex"},
        "bad_lock_rank.cc": {"lock-rank"},
        "bad_raw_pin.cc": {"raw-pin"},
        "bad_lifetime.cc": {"lifetime"},
        "ordb/executor.cc": {"guard-loop"},
        "ordb/row_codec.cc": {"raw-bytes"},
        "clean.h": set(),
    }
    failures = []
    for name, expected in cases.items():
        path = testdata / "src" / name
        if not path.exists():
            failures.append(f"missing fixture {path}")
            continue
        findings = []
        lint_file(testdata, path, findings, lib=True)
        got = {f.rule for f in findings}
        if got != expected:
            failures.append(f"{name}: expected rules {sorted(expected)}, "
                            f"got {sorted(got)}: "
                            + "; ".join(str(f) for f in findings))
    if failures:
        print("lint self-test FAILED:")
        for f in failures:
            print("  " + f)
        return 1
    print(f"lint self-test passed ({len(cases)} fixtures)")
    return 0


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--root", type=pathlib.Path,
                    default=pathlib.Path(__file__).resolve().parents[2])
    ap.add_argument("--self-test", action="store_true")
    args = ap.parse_args()
    if args.self_test:
        return self_test(pathlib.Path(__file__).resolve().parent)
    findings = run(args.root.resolve())
    for f in findings:
        print(f)
    if findings:
        print(f"lint: {len(findings)} finding(s)")
        return 1
    print("lint: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
