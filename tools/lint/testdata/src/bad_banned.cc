#include <cstdio>
#include <cstdlib>
#include <cstring>

// The string literal and the comment must NOT fire: rand( strcpy( printf(
void Bad(char* dst, const char* src) {
  const char* s = "rand( printf( strcpy(";
  (void)s;
  strcpy(dst, src);
  printf("value: %d\n", rand());
  std::fprintf(stderr, "fprintf to stderr is fine\n");
  std::snprintf(dst, 4, "ok");
}
