int Fallible();

struct Api {
  int Try();
};

void Bad(Api* api) {
  (void)Fallible();
  (void)api->Try();
  int unused = 0;
  (void)unused;  // a variable, not a call: allowed, so only two findings
}
