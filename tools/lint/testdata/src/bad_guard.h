#ifndef WRONG_GUARD_H
#define WRONG_GUARD_H

/// A documented struct so only the guard rule fires.
struct Dummy {
  int x = 0;
};

#endif  // WRONG_GUARD_H
