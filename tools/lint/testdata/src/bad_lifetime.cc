// Fixture for the `lifetime` rule: a view returned without declaring what
// it borrows from. The fix is
//   std::string_view FirstToken(std::string_view s XO_LIFETIME_BOUND);
#include <string_view>

namespace xorator {

/// First space-delimited token of `s` (the whole of `s` if no space).
std::string_view FirstToken(std::string_view s) {
  size_t sep = s.find(' ');
  return sep == std::string_view::npos ? s : s.substr(0, sep);
}

/// Annotated correctly: must NOT be flagged.
std::string_view Identity(std::string_view s XO_LIFETIME_BOUND) { return s; }

/// Static-storage view, allowlisted by name: must NOT be flagged.
std::string_view TypeName(int t) { return t == 0 ? "null" : "other"; }

/// A local view variable with constructor syntax: not a declaration, must
/// NOT be flagged.
void Consume() {
  const std::string_view view("payload");
  (void)view;
}

}  // namespace xorator
