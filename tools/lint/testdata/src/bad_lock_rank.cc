// Fixture: annotated mutexes declared without an explicit LockRank on the
// declaration, which the lock-rank rule rejects (the real construct does
// not even compile — the default constructor is deleted — but the lint
// keeps the rank greppable at the declaration site).
#include "common/mutex.h"

namespace fixture {

xo::Mutex g_mu;
xo::SharedMutex g_rw;

/// A member declaration without a rank is rejected the same way.
class Holder {
 public:
  int Read() const {
    xo::MutexLock lock(&mu_);  // guard use is fine; the decl is the finding
    return value_;
  }

 private:
  mutable xo::Mutex mu_;
  int value_ = 0;
};

/// Ranked declarations (the fix) are accepted — these must NOT fire.
xo::Mutex g_ranked{xo::LockRank::kLeafHealth};
xo::SharedMutex g_ranked_rw{xo::LockRank::kCatalog};

}  // namespace fixture
