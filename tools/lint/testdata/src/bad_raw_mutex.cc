// Fixture: every raw standard locking primitive the raw-mutex rule bans.
#include <mutex>
#include <shared_mutex>

namespace fixture {

std::mutex g_mu;
std::shared_mutex g_rw;

int LockedRead(int* value) {
  std::lock_guard<std::mutex> lock(g_mu);
  std::shared_lock<std::shared_mutex> rlock(g_rw);
  std::unique_lock<std::mutex> ulock(g_mu, std::defer_lock);
  return *value;
}

}  // namespace fixture
