// Fixture: raw buffer-pool pin-protocol calls outside the allowlisted
// src/ordb/buffer_pool.{h,cc} — all three banned spellings.
namespace fixture {

class Pool {
 public:
  char* FetchPage(unsigned id);
  char* NewPage();
  void Unpin(unsigned id, bool dirty);
};

char ReadByte(Pool* pool, unsigned id) {
  char* data = pool->FetchPage(id);
  char out = data[0];
  pool->Unpin(id, false);
  return out;
}

char* Grow(Pool* pool) { return pool->NewPage(); }

}  // namespace fixture
