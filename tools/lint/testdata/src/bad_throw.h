#ifndef XORATOR_BAD_THROW_H_
#define XORATOR_BAD_THROW_H_

#include <stdexcept>

struct Thrower {
  void Boom() { throw std::runtime_error("no"); }
};

#endif  // XORATOR_BAD_THROW_H_
