#ifndef XORATOR_CLEAN_H_
#define XORATOR_CLEAN_H_

#include <string>

namespace xorator {

/// A documented class: no findings expected anywhere in this file.
class Clean {
 public:
  /// Returns the stored name.
  const std::string& name() const { return name_; }

 private:
  std::string name_;
};

/// A documented free function declaration.
int Answer();

}  // namespace xorator

#endif  // XORATOR_CLEAN_H_
