// guard-loop fixture: one conforming operator and one that never polls
// the query guard. Exactly the second definition must be flagged; the
// qualified base call inside it must not be mistaken for a definition.

namespace xorator::ordb {

Result<bool> GoodScanOp::Next(Tuple* out) {
  XO_RETURN_NOT_OK(ctx_->CheckPoint());
  return Fill(out);
}

Result<bool> BadScanOp::Next(Tuple* out) {
  return BaseOp::Next(out);
}

}  // namespace xorator::ordb
