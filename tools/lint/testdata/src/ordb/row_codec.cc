// raw-bytes fixture: a decode-path file touching raw bytes three ways —
// memcpy, reinterpret_cast, and pointer arithmetic on data(). Each must be
// flagged; the same tokens in comments and strings must not fire:
// memcpy( reinterpret_cast data() +

#include <cstring>
#include <string>

namespace xorator::ordb {

void BadDecode(const std::string& row, char* out) {
  const char* s = "memcpy( reinterpret_cast data() +";
  (void)s;
  std::memcpy(out, row.data(), 8);
  const long* p = reinterpret_cast<const long*>(row.data());
  (void)p;
  const char* cursor = row.data() + 4;
  (void)cursor;
}

}  // namespace xorator::ordb
